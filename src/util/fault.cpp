#include "fault.hpp"

#include <cctype>
#include <charconv>
#include <sstream>

namespace hetopt::util {
namespace {

// The process-wide armed injector. Plain pointer publication: arming happens
// before the run that observes it starts (and disarming after it ends), so
// relaxed ordering suffices for the hot-path current() load; the arm/disarm
// writes use acq_rel to order the plan's construction before publication.
std::atomic<const FaultInjector*> g_armed{nullptr};

[[nodiscard]] std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())) != 0) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())) != 0) {
    s.remove_suffix(1);
  }
  return s;
}

[[nodiscard]] FaultKind parse_kind(std::string_view word) {
  if (word == "pool-death") return FaultKind::kPoolDeath;
  if (word == "pool-stall") return FaultKind::kPoolStall;
  if (word == "chunk-throw") return FaultKind::kChunkThrow;
  if (word == "chunk-slow") return FaultKind::kChunkSlow;
  if (word == "worker-throw") return FaultKind::kWorkerThrow;
  if (word == "measure-fail") return FaultKind::kMeasureFail;
  if (word == "measure-noise") return FaultKind::kMeasureNoise;
  if (word == "probe") return FaultKind::kProbe;
  throw std::invalid_argument("fault plan: unknown fault kind '" + std::string(word) + "'");
}

[[nodiscard]] std::size_t parse_size(std::string_view value, std::string_view key) {
  std::size_t out = 0;
  const auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    throw std::invalid_argument("fault plan: bad value '" + std::string(value) + "' for key '" +
                                std::string(key) + "'");
  }
  return out;
}

[[nodiscard]] double parse_factor(std::string_view value) {
  // std::from_chars<double> is still spotty across standard libraries; the
  // values are short, so stringstream parsing is fine here.
  std::istringstream in{std::string(value)};
  double out = 0.0;
  if (!(in >> out) || !in.eof() || !(out > 0.0)) {
    throw std::invalid_argument("fault plan: factor must be a positive number, got '" +
                                std::string(value) + "'");
  }
  return out;
}

[[nodiscard]] Fault parse_entry(std::string_view entry) {
  Fault fault;
  const std::size_t colon = entry.find(':');
  fault.kind = parse_kind(trim(entry.substr(0, colon)));
  if (colon == std::string_view::npos) {
    return fault;
  }
  std::string_view rest = entry.substr(colon + 1);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view pair = trim(rest.substr(0, comma));
    rest = comma == std::string_view::npos ? std::string_view{} : rest.substr(comma + 1);
    if (pair.empty()) {
      continue;
    }
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      throw std::invalid_argument("fault plan: expected key=value, got '" + std::string(pair) +
                                  "'");
    }
    const std::string_view key = trim(pair.substr(0, eq));
    const std::string_view value = trim(pair.substr(eq + 1));
    if (key == "pool") {
      fault.pool = parse_size(value, key);
    } else if (key == "chunk") {
      fault.chunk = parse_size(value, key);
    } else if (key == "after") {
      fault.after = parse_size(value, key);
    } else if (key == "times") {
      fault.times = parse_size(value, key);
    } else if (key == "factor") {
      fault.factor = parse_factor(value);
    } else if (key == "repeat") {
      fault.repeat = parse_size(value, key);
    } else {
      throw std::invalid_argument("fault plan: unknown key '" + std::string(key) + "'");
    }
  }
  return fault;
}

}  // namespace

std::string_view to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kPoolDeath: return "pool-death";
    case FaultKind::kPoolStall: return "pool-stall";
    case FaultKind::kChunkThrow: return "chunk-throw";
    case FaultKind::kChunkSlow: return "chunk-slow";
    case FaultKind::kWorkerThrow: return "worker-throw";
    case FaultKind::kMeasureFail: return "measure-fail";
    case FaultKind::kMeasureNoise: return "measure-noise";
    case FaultKind::kProbe: return "probe";
  }
  return "unknown";
}

FaultPlan FaultPlan::parse(std::string_view spec, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  while (!spec.empty()) {
    const std::size_t semi = spec.find(';');
    const std::string_view entry = trim(spec.substr(0, semi));
    spec = semi == std::string_view::npos ? std::string_view{} : spec.substr(semi + 1);
    if (!entry.empty()) {
      plan.faults.push_back(parse_entry(entry));
    }
  }
  return plan;
}

bool FaultPlan::exercises_recovery() const noexcept {
  for (const Fault& fault : faults) {
    switch (fault.kind) {
      case FaultKind::kPoolDeath:
      case FaultKind::kPoolStall:
      case FaultKind::kChunkThrow:
      case FaultKind::kChunkSlow:
      case FaultKind::kWorkerThrow:
      case FaultKind::kProbe:
        return true;
      case FaultKind::kMeasureFail:
      case FaultKind::kMeasureNoise:
        break;
    }
  }
  return false;
}

std::string FaultPlan::to_string() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const Fault& fault = faults[i];
    if (i > 0) {
      out << "; ";
    }
    out << util::to_string(fault.kind);
    switch (fault.kind) {
      case FaultKind::kPoolDeath:
      case FaultKind::kPoolStall:
        out << ":pool=" << fault.pool;
        break;
      case FaultKind::kChunkThrow:
        out << ":chunk=" << fault.chunk << ",times=" << fault.times;
        break;
      case FaultKind::kChunkSlow:
        out << ":chunk=" << fault.chunk << ",factor=" << fault.factor;
        break;
      case FaultKind::kWorkerThrow:
        out << ":after=" << fault.after << ",times=" << fault.times;
        break;
      case FaultKind::kMeasureFail:
        out << ":after=" << fault.after << ",times=" << fault.times;
        break;
      case FaultKind::kMeasureNoise:
        out << ":repeat=" << fault.repeat << ",factor=" << fault.factor;
        break;
      case FaultKind::kProbe:
        break;
    }
  }
  return out.str();
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  const FaultInjector* expected = nullptr;
  if (!g_armed.compare_exchange_strong(expected, this, std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
    throw std::logic_error("FaultInjector: another plan is already armed");
  }
}

FaultInjector::~FaultInjector() { g_armed.store(nullptr, std::memory_order_release); }

const FaultInjector* FaultInjector::current() noexcept {
  return g_armed.load(std::memory_order_relaxed);
}

bool FaultInjector::pool_dies(std::size_t pool) const noexcept {
  for (const Fault& fault : plan_.faults) {
    if (fault.kind == FaultKind::kPoolDeath && fault.pool == pool) {
      return true;
    }
  }
  return false;
}

bool FaultInjector::pool_stalls(std::size_t pool) const noexcept {
  for (const Fault& fault : plan_.faults) {
    if (fault.kind == FaultKind::kPoolStall && fault.pool == pool) {
      return true;
    }
  }
  return false;
}

void FaultInjector::chunk_scan(std::size_t chunk, std::size_t attempt) const {
  for (const Fault& fault : plan_.faults) {
    if (fault.kind == FaultKind::kChunkThrow && fault.chunk == chunk && attempt < fault.times) {
      injected_.fetch_add(1, std::memory_order_relaxed);
      std::ostringstream what;
      what << "injected chunk-throw: chunk " << chunk << " attempt " << attempt;
      throw FaultInjectedError(what.str());
    }
  }
}

double FaultInjector::chunk_slow_factor(std::size_t chunk) const noexcept {
  double factor = 1.0;
  for (const Fault& fault : plan_.faults) {
    if (fault.kind == FaultKind::kChunkSlow && fault.chunk == chunk) {
      factor *= fault.factor;
    }
  }
  return factor;
}

bool FaultInjector::chunk_faulty(std::size_t chunk) const noexcept {
  for (const Fault& fault : plan_.faults) {
    if ((fault.kind == FaultKind::kChunkThrow || fault.kind == FaultKind::kChunkSlow) &&
        fault.chunk == chunk) {
      return true;
    }
  }
  return false;
}

bool FaultInjector::worker_throws() const noexcept {
  const std::uint64_t call = worker_tasks_.fetch_add(1, std::memory_order_relaxed);
  for (const Fault& fault : plan_.faults) {
    if (fault.kind == FaultKind::kWorkerThrow && call >= fault.after &&
        call < fault.after + fault.times) {
      injected_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

bool FaultInjector::measure_fails() const noexcept {
  const std::uint64_t call = measure_calls_.fetch_add(1, std::memory_order_relaxed);
  for (const Fault& fault : plan_.faults) {
    if (fault.kind == FaultKind::kMeasureFail && call >= fault.after &&
        call < fault.after + fault.times) {
      injected_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

double FaultInjector::measure_noise(std::size_t repeat) const noexcept {
  double factor = 1.0;
  for (const Fault& fault : plan_.faults) {
    if (fault.kind == FaultKind::kMeasureNoise && fault.repeat == repeat) {
      injected_.fetch_add(1, std::memory_order_relaxed);
      factor *= fault.factor;
    }
  }
  return factor;
}

}  // namespace hetopt::util
