#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace hetopt::util {

Table::Table(std::string title) : title_(std::move(title)) {}

Table& Table::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

Table& Table::note(std::string line) {
  notes_.push_back(std::move(line));
  return *this;
}

namespace {

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string Table::render() const {
  // Column widths over header + all rows.
  std::vector<std::size_t> widths;
  const auto absorb = [&](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  absorb(header_);
  for (const auto& r : rows_) absorb(r);

  std::ostringstream os;
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string{};
      os << cell << std::string(widths[i] - cell.size(), ' ');
      if (i + 1 < widths.size()) os << " | ";
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      total += widths[i] + (i + 1 < widths.size() ? 3 : 0);
    }
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  for (const auto& n : notes_) os << "  * " << n << '\n';
  return os.str();
}

void Table::print(std::ostream& os) const { os << render(); }

std::string Table::to_csv() const {
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << ',';
      os << csv_escape(cells[i]);
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

}  // namespace hetopt::util
