// Deterministic fault injection for the execution runtime.
//
// A FaultPlan is a seeded, declarative list of faults ("pool 1 dies", "chunk
// 5's scan throws twice", "the first measurement fails") that an armed
// FaultInjector delivers at fixed injection points compiled into
// parallel::ThreadPool, core::HeterogeneousExecutor and
// core::RealWorkloadEvaluator. Arming is scoped: constructing a FaultInjector
// arms its plan process-wide, destroying it disarms, and the disarmed check
// is a single relaxed atomic pointer load — the no-fault hot path pays one
// predictable branch per chunk, nothing more.
//
// Faults are deterministic by construction: which pool dies, which chunk
// throws and how often, and which repeat sees a noise spike are all fixed by
// the plan, never by wall-clock or entropy (the seed only feeds jitter-style
// consumers such as util::Backoff). That is what lets the parity-under-fault
// property suite assert byte-identical match results against the sequential
// oracle while the recovery machinery is being exercised.
//
// Plan syntax (FaultPlan::parse):
//
//   plan   := entry (';' entry)*
//   entry  := kind (':' key '=' value (',' key '=' value)*)?
//
//   pool-death:pool=P            pool P's workers throw before claiming work
//   pool-stall:pool=P            pool P hangs until the watchdog releases it
//   chunk-throw:chunk=C,times=T  chunk C's scan throws on its first T attempts
//   chunk-slow:chunk=C,factor=K  chunk C's scan is slowed down x K
//   worker-throw:after=N,times=T the pool worker loop throws after task N
//   measure-fail:after=N,times=T measurement attempts N..N+T-1 throw
//   measure-noise:repeat=R,factor=K   repeat R's timing is multiplied by K
//   probe                        no fault; forces the recovery machinery on
//                                (used to measure its zero-fault overhead)
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace hetopt::util {

enum class FaultKind {
  kPoolDeath = 0,
  kPoolStall,
  kChunkThrow,
  kChunkSlow,
  kWorkerThrow,
  kMeasureFail,
  kMeasureNoise,
  kProbe,
};

[[nodiscard]] std::string_view to_string(FaultKind kind) noexcept;

/// One planned fault. Which fields matter depends on `kind`; the rest keep
/// their defaults (see the plan syntax above).
struct Fault {
  FaultKind kind = FaultKind::kProbe;
  std::size_t pool = 0;    // pool-death / pool-stall target
  std::size_t chunk = 0;   // chunk-throw / chunk-slow target (global chunk index)
  std::size_t after = 0;   // worker-throw / measure-fail: first triggering call
  std::size_t times = 1;   // how many calls/attempts the fault covers
  double factor = 1.0;     // chunk-slow / measure-noise multiplier
  std::size_t repeat = 0;  // measure-noise target repeat index
};

struct FaultPlan {
  std::vector<Fault> faults;
  /// Seeds jitter-style consumers (e.g. the evaluator's retry Backoff); the
  /// faults themselves are position-determined, not sampled.
  std::uint64_t seed = 0;

  /// Parses the plan syntax documented above. Whitespace around tokens is
  /// ignored; an empty spec is an empty (but armable) plan. Throws
  /// std::invalid_argument on unknown kinds/keys or malformed values.
  [[nodiscard]] static FaultPlan parse(std::string_view spec, std::uint64_t seed = 0);

  /// True when the plan contains an executor-level fault (pool-death,
  /// pool-stall, chunk-throw, chunk-slow, or probe) — the executor routes the
  /// run through the recovery-capable path exactly when this holds.
  [[nodiscard]] bool exercises_recovery() const noexcept;

  [[nodiscard]] std::string to_string() const;
};

/// What an injection point throws. Recovery code catches this exactly like a
/// genuine scan/measurement error — the injected and the real failure take
/// the same healing path.
class FaultInjectedError : public std::runtime_error {
 public:
  explicit FaultInjectedError(const std::string& what) : std::runtime_error(what) {}
};

/// Scoped arming of a FaultPlan. At most one injector may be armed at a time
/// (a second construction throws std::logic_error); arm/disarm must not race
/// an in-flight run — arm, run, then disarm, as the test suites do.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// The armed injector, or nullptr — the zero-cost disarmed check.
  [[nodiscard]] static const FaultInjector* current() noexcept;

  // --- Injection-point queries (thread-safe) --------------------------------

  /// True when `pool`'s workers are planned to throw before claiming work.
  [[nodiscard]] bool pool_dies(std::size_t pool) const noexcept;
  /// True when `pool` is planned to hang until the watchdog releases it.
  [[nodiscard]] bool pool_stalls(std::size_t pool) const noexcept;
  /// Throws FaultInjectedError when `chunk`'s scan is planned to fail on
  /// `attempt` (attempts are 0-based and fail while attempt < times).
  void chunk_scan(std::size_t chunk, std::size_t attempt) const;
  /// The planned slowdown of `chunk`'s scan (1.0 = none).
  [[nodiscard]] double chunk_slow_factor(std::size_t chunk) const noexcept;
  /// True when any chunk-level fault (throw or slow) targets `chunk` — lets
  /// batch scanners route only the affected chunks through the slow
  /// one-at-a-time recovery scan.
  [[nodiscard]] bool chunk_faulty(std::size_t chunk) const noexcept;
  /// Counts one executed pool task; true when the worker loop is planned to
  /// throw after it (the ThreadPool injection point).
  [[nodiscard]] bool worker_throws() const noexcept;
  /// Counts one measurement attempt; true when it is planned to fail.
  [[nodiscard]] bool measure_fails() const noexcept;
  /// The planned timing-noise multiplier of measurement repeat `repeat`.
  [[nodiscard]] double measure_noise(std::size_t repeat) const noexcept;

  [[nodiscard]] bool exercises_recovery() const noexcept {
    return plan_.exercises_recovery();
  }
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  /// Faults actually delivered so far (throws and noise spikes).
  [[nodiscard]] std::uint64_t injected() const noexcept {
    return injected_.load(std::memory_order_relaxed);
  }

 private:
  FaultPlan plan_;
  mutable std::atomic<std::uint64_t> injected_{0};
  mutable std::atomic<std::uint64_t> worker_tasks_{0};
  mutable std::atomic<std::uint64_t> measure_calls_{0};
};

}  // namespace hetopt::util
