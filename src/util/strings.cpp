#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <stdexcept>

namespace hetopt::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view s) noexcept {
  const auto is_space = [](char c) {
    return std::isspace(static_cast<unsigned char>(c)) != 0;
  };
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string format_trimmed(double v, int max_precision) {
  std::string s = format_double(v, max_precision);
  if (s.find('.') == std::string::npos) return s;
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

double parse_double(std::string_view s) {
  const std::string_view t = trim(s);
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), value);
  if (ec != std::errc{} || ptr != t.data() + t.size()) {
    throw std::invalid_argument("parse_double: bad input '" + std::string(s) + "'");
  }
  return value;
}

long long parse_int(std::string_view s) {
  const std::string_view t = trim(s);
  long long value = 0;
  const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), value);
  if (ec != std::errc{} || ptr != t.data() + t.size()) {
    throw std::invalid_argument("parse_int: bad input '" + std::string(s) + "'");
  }
  return value;
}

}  // namespace hetopt::util
