// Descriptive statistics and histogram utilities used by the ML error
// analysis (Figs. 7/8, Tables IV/V) and the benchmark harnesses.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace hetopt::util {

/// Welford online mean/variance accumulator. Numerically stable; O(1) space.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

[[nodiscard]] double mean(std::span<const double> xs) noexcept;
[[nodiscard]] double variance(std::span<const double> xs) noexcept;
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;
/// Linear-interpolated percentile, p in [0,100]. Copies and sorts.
[[nodiscard]] double percentile(std::span<const double> xs, double p);
[[nodiscard]] double median(std::span<const double> xs);
[[nodiscard]] double min_of(std::span<const double> xs) noexcept;
[[nodiscard]] double max_of(std::span<const double> xs) noexcept;

/// Histogram with explicit (irregular) bin upper edges, matching the paper's
/// Figs. 7 and 8 which use hand-picked edges like
/// {0.01, 0.02, 0.03, ..., 0.2}. A final overflow bin catches the rest.
class Histogram {
 public:
  /// `upper_edges` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> upper_edges);

  void add(double x) noexcept;
  void add_all(std::span<const double> xs) noexcept;

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  /// Count in bin i; bin i covers (edge[i-1], edge[i]] with edge[-1] = -inf;
  /// the last bin is the overflow bin (> last edge).
  [[nodiscard]] std::size_t count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] const std::vector<std::size_t>& counts() const noexcept { return counts_; }
  [[nodiscard]] const std::vector<double>& edges() const noexcept { return edges_; }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  /// Human-readable label for bin i, e.g. "<=0.01" or ">0.2".
  [[nodiscard]] std::string label(std::size_t i) const;

 private:
  std::vector<double> edges_;
  std::vector<std::size_t> counts_;  // edges_.size() + 1 (overflow)
  std::size_t total_ = 0;
};

}  // namespace hetopt::util
