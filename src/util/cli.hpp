// Minimal command-line flag parser for the examples and bench harnesses.
// Supports --name=value, --name value, and boolean --flag forms.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace hetopt::util {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  [[nodiscard]] bool has(std::string_view name) const;
  [[nodiscard]] std::string get(std::string_view name, std::string fallback) const;
  [[nodiscard]] double get(std::string_view name, double fallback) const;
  [[nodiscard]] std::int64_t get(std::string_view name, std::int64_t fallback) const;
  [[nodiscard]] bool flag(std::string_view name) const { return has(name); }

  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }
  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string, std::less<>> flags_;
  std::vector<std::string> positional_;
};

}  // namespace hetopt::util
