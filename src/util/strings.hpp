// Small string helpers shared by the table renderer, CLI parser and FASTA IO.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hetopt::util {

[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);
[[nodiscard]] std::string join(const std::vector<std::string>& parts, std::string_view sep);
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix) noexcept;
[[nodiscard]] std::string to_lower(std::string_view s);

/// Fixed-precision decimal formatting ("%.*f") without iostream state.
[[nodiscard]] std::string format_double(double v, int precision);
/// Like format_double but trims trailing zeros ("1.50" -> "1.5", "2.00" -> "2").
[[nodiscard]] std::string format_trimmed(double v, int max_precision);

/// Parses a double; throws std::invalid_argument with context on failure.
[[nodiscard]] double parse_double(std::string_view s);
/// Parses a non-negative integer; throws std::invalid_argument on failure.
[[nodiscard]] long long parse_int(std::string_view s);

}  // namespace hetopt::util
