// Annotated synchronization primitives: thin, zero-overhead wrappers over
// std::mutex / std::condition_variable that carry the clang thread-safety
// capability attributes (util/annotations.hpp). libstdc++'s own types are
// unannotated, so the static analysis cannot see their acquisitions; all
// lock-based hetopt code locks through these wrappers instead, which makes
// `clang++ -Wthread-safety -Werror` a compile-time race detector over it.
//
// Under GCC the attributes vanish and every member is a forwarding inline
// call — semantics and codegen are those of the standard types.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/annotations.hpp"

namespace hetopt::util {

class CondVar;

/// An annotated std::mutex. Prefer the RAII MutexLock below; bare
/// lock()/unlock() exist for the rare hand-over-hand pattern and keep the
/// analysis informed through their acquire/release annotations.
class HETOPT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HETOPT_ACQUIRE() { mutex_.lock(); }
  void unlock() HETOPT_RELEASE() { mutex_.unlock(); }
  [[nodiscard]] bool try_lock() HETOPT_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  friend class CondVar;  // wait() adopts the already-held native handle
  std::mutex mutex_;
};

/// RAII lock over a Mutex (the annotated std::lock_guard).
class HETOPT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) HETOPT_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() HETOPT_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// An annotated std::condition_variable. wait() requires the mutex held (CP.42:
/// waiting always happens under a condition) and returns with it held again;
/// spurious wakeups are possible, so callers loop on their predicate:
///
///   util::MutexLock lock(mutex_);
///   while (!ready_) cv_.wait(mutex_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mutex` and blocks; re-acquires before returning.
  /// The adopt/release dance hands the already-held native mutex to a
  /// temporary std::unique_lock (what std::condition_variable::wait needs)
  /// without a second lock operation, and takes it back out so the scoped
  /// holder — and the static analysis — keep sole ownership of the state.
  void wait(Mutex& mutex) HETOPT_REQUIRES(mutex) {
    std::unique_lock<std::mutex> native(mutex.mutex_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace hetopt::util
