#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/strings.hpp"

namespace hetopt::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) noexcept { return std::sqrt(variance(xs)); }

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty span");
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double min_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

Histogram::Histogram(std::vector<double> upper_edges) : edges_(std::move(upper_edges)) {
  if (edges_.empty()) throw std::invalid_argument("Histogram: no edges");
  if (!std::is_sorted(edges_.begin(), edges_.end()) ||
      std::adjacent_find(edges_.begin(), edges_.end()) != edges_.end()) {
    throw std::invalid_argument("Histogram: edges must be strictly increasing");
  }
  counts_.assign(edges_.size() + 1, 0);
}

void Histogram::add(double x) noexcept {
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), x);
  const auto idx = static_cast<std::size_t>(it - edges_.begin());
  ++counts_[idx];
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) noexcept {
  for (double x : xs) add(x);
}

std::string Histogram::label(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("Histogram::label");
  std::string out = (i == edges_.size()) ? ">" : "<=";
  out += format_double(i == edges_.size() ? edges_.back() : edges_[i], 3);
  return out;
}

}  // namespace hetopt::util
