#include "util/cpu_features.hpp"

#include <cstdlib>
#include <stdexcept>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#define HETOPT_CPUID_AVAILABLE 1
#endif

namespace hetopt::util {

namespace {

#if defined(HETOPT_CPUID_AVAILABLE)

/// CPUID brand string: leaves 0x80000002..4, 16 bytes of ASCII each.
std::string brand_string() {
  unsigned int max_ext = __get_cpuid_max(0x80000000u, nullptr);
  if (max_ext < 0x80000004u) return "unknown";
  char brand[49] = {};
  auto* words = reinterpret_cast<unsigned int*>(brand);
  for (unsigned int leaf = 0; leaf < 3; ++leaf) {
    unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
    __get_cpuid(0x80000002u + leaf, &eax, &ebx, &ecx, &edx);
    words[4 * leaf + 0] = eax;
    words[4 * leaf + 1] = ebx;
    words[4 * leaf + 2] = ecx;
    words[4 * leaf + 3] = edx;
  }
  std::string name(brand);
  // Trim leading spaces (Intel pads the brand string on the left).
  const std::size_t first = name.find_first_not_of(' ');
  if (first == std::string::npos) return "unknown";
  return name.substr(first);
}

CpuFeatures probe() {
  CpuFeatures f;
  unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) != 0) {
    f.sse2 = (edx & (1u << 26)) != 0;
    f.ssse3 = (ecx & (1u << 9)) != 0;
    f.avx = (ecx & (1u << 28)) != 0;
  }
  // AVX2 lives in leaf 7 subleaf 0, EBX bit 5. AVX must also be OS-enabled;
  // the CPUID OSXSAVE+AVX pair checked above is the standard proxy.
  if (f.avx && __get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) != 0) {
    f.avx2 = (ebx & (1u << 5)) != 0;
  }
  f.model_name = brand_string();
  return f;
}

#else  // non-x86: no vector tiers, scalar only.

CpuFeatures probe() { return CpuFeatures{}; }

#endif

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures features = probe();
  return features;
}

IsaLevel detected_isa() {
  const CpuFeatures& f = cpu_features();
  if (f.avx2) return IsaLevel::kAvx2;
  if (f.sse2) return IsaLevel::kSse2;
  return IsaLevel::kScalar;
}

std::optional<IsaLevel> isa_from_string(const std::string& name) noexcept {
  for (const IsaLevel level :
       {IsaLevel::kScalar, IsaLevel::kSse2, IsaLevel::kAvx2}) {
    if (name == to_string(level)) return level;
  }
  return std::nullopt;
}

std::optional<IsaLevel> forced_isa() {
  const char* raw = std::getenv("HETOPT_FORCE_ISA");
  if (raw == nullptr || raw[0] == '\0') return std::nullopt;
  const auto level = isa_from_string(raw);
  if (!level.has_value()) {
    throw std::runtime_error(std::string("HETOPT_FORCE_ISA: unknown ISA '") + raw +
                             "' (expected scalar, sse2, or avx2)");
  }
  return level;
}

bool cpu_supports(IsaLevel level) {
  switch (level) {
    case IsaLevel::kScalar:
      return true;
    case IsaLevel::kSse2:
      return cpu_features().sse2;
    case IsaLevel::kAvx2:
      return cpu_features().avx2;
  }
  return false;
}

}  // namespace hetopt::util
