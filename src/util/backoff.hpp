// Bounded exponential backoff with seeded jitter.
//
// Retry loops (the evaluator's self-healing measure(), most prominently)
// need spacing between attempts, but sleeping for wall-clock-derived or
// entropy-derived durations would break the repo's determinism guarantee.
// Backoff draws its jitter from util::rng::Xoshiro256 seeded explicitly, so
// the full delay sequence is a pure function of (seed, options) — the same
// run replays the same waits.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <thread>

#include "rng.hpp"

namespace hetopt::util {

class Backoff {
 public:
  struct Options {
    double base_seconds = 0.0005;  ///< first delay before jitter
    double max_seconds = 0.05;     ///< cap on the un-jittered delay
    double multiplier = 2.0;       ///< growth per attempt
    double jitter = 0.25;          ///< delay scaled uniformly in [1-j, 1+j)
  };

  explicit Backoff(std::uint64_t seed) : Backoff(seed, Options{}) {}

  Backoff(std::uint64_t seed, const Options& options)
      : options_(options), seed_(seed), rng_(seed) {
    if (!(options_.base_seconds > 0.0)) {
      throw std::invalid_argument("Backoff: base_seconds must be positive");
    }
    if (options_.max_seconds < options_.base_seconds) {
      throw std::invalid_argument("Backoff: max_seconds must be >= base_seconds");
    }
    if (options_.multiplier < 1.0) {
      throw std::invalid_argument("Backoff: multiplier must be >= 1");
    }
    if (options_.jitter < 0.0 || options_.jitter >= 1.0) {
      throw std::invalid_argument("Backoff: jitter must be in [0, 1)");
    }
  }

  /// The next delay in seconds, advancing the attempt counter. Delay n is
  /// min(max, base * multiplier^n) scaled by a seeded uniform draw from
  /// [1 - jitter, 1 + jitter).
  [[nodiscard]] double next_delay() {
    double raw = options_.base_seconds;
    for (std::size_t i = 0; i < attempt_ && raw < options_.max_seconds; ++i) {
      raw *= options_.multiplier;
    }
    raw = std::min(raw, options_.max_seconds);
    ++attempt_;
    const double scale = 1.0 - options_.jitter + 2.0 * options_.jitter * rng_.uniform();
    return raw * scale;
  }

  /// Blocks the calling thread for next_delay() seconds.
  void sleep() {
    std::this_thread::sleep_for(std::chrono::duration<double>(next_delay()));
  }

  /// Delays handed out so far.
  [[nodiscard]] std::size_t attempts() const noexcept { return attempt_; }

  /// Restarts the sequence from attempt 0 with the original seed.
  void reset() noexcept {
    attempt_ = 0;
    rng_ = Xoshiro256(seed_);
  }

 private:
  Options options_;
  std::uint64_t seed_;
  Xoshiro256 rng_;
  std::size_t attempt_ = 0;
};

}  // namespace hetopt::util
