// Deterministic pseudo-random number generation for hetopt.
//
// Everything in this project that is stochastic (measurement noise, simulated
// annealing moves, synthetic genomes, train/test splits) draws from these
// generators so that experiments are bit-reproducible given a seed.
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>

namespace hetopt::util {

/// SplitMix64: used to expand a single 64-bit seed into generator state and
/// to hash arbitrary integers into well-mixed 64-bit values.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Mix a 64-bit value (stateless convenience over splitmix64).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// Combine two 64-bit values into one well-mixed value. Order-sensitive.
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/// FNV-1a hash of a string, for deriving seeds from names ("human", "mouse", ...).
[[nodiscard]] constexpr std::uint64_t hash_string(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// xoshiro256** 1.0 by Blackman & Vigna. Fast, high-quality, 2^256-1 period.
/// Satisfies UniformRandomBitGenerator so it can feed <random> distributions,
/// though the member helpers below avoid libstdc++ distribution variance
/// across versions.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words by running SplitMix64 on `seed`.
  explicit constexpr Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& w : state_) w = splitmix64(sm);
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1). Uses the top 53 bits.
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Lemire's unbiased bounded method (simplified
  /// rejection-free variant is fine here: 64-bit multiply-shift with
  /// negligible bias for the small n used in this project, but we keep the
  /// rejection loop for exactness).
  [[nodiscard]] std::uint64_t bounded(std::uint64_t n) noexcept {
    if (n == 0) return 0;
    const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    if (hi <= lo) return lo;
    return lo + static_cast<std::int64_t>(
                    bounded(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Standard normal variate via Box–Muller (stateless variant: one value per
  /// call, discarding the pair's sibling keeps the generator stream simple to
  /// reason about in tests).
  [[nodiscard]] double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Lognormal multiplicative factor with median 1 and log-space sigma.
  /// Used by the measurement-noise model.
  [[nodiscard]] double lognormal_factor(double sigma) noexcept;

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Fork a statistically independent child generator; `tag` distinguishes
  /// children forked from the same parent state.
  [[nodiscard]] Xoshiro256 fork(std::uint64_t tag) noexcept {
    return Xoshiro256(hash_combine((*this)(), tag));
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

/// Fisher–Yates shuffle of an indexable container using Xoshiro256.
template <typename Container>
void shuffle(Container& c, Xoshiro256& rng) {
  const auto n = c.size();
  if (n < 2) return;
  for (std::size_t i = n - 1; i > 0; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.bounded(i + 1));
    using std::swap;
    swap(c[i], c[j]);
  }
}

}  // namespace hetopt::util
