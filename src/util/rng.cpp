#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace hetopt::util {

double Xoshiro256::normal() noexcept {
  // Box–Muller. Guard u1 away from zero so log() is finite.
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double Xoshiro256::lognormal_factor(double sigma) noexcept {
  return std::exp(sigma * normal());
}

}  // namespace hetopt::util
