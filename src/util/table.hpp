// Plain-text table and CSV rendering. Every benchmark harness prints its
// paper table/figure through this so the output format is uniform and easy
// to diff against EXPERIMENTS.md.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hetopt::util {

/// Column-aligned ASCII table with a title, header row and footer notes.
class Table {
 public:
  explicit Table(std::string title = {});

  Table& header(std::vector<std::string> cells);
  Table& row(std::vector<std::string> cells);
  Table& note(std::string line);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }

  /// Renders with ' | ' separators and a rule under the header.
  [[nodiscard]] std::string render() const;
  void print(std::ostream& os) const;
  /// RFC-4180-ish CSV (quotes fields containing comma/quote/newline).
  [[nodiscard]] std::string to_csv() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> notes_;
};

}  // namespace hetopt::util
