#pragma once

// Runtime CPU capability probe for the SIMD engine tier.
//
// One binary carries every compiled vector kernel (scalar always, SSE2/AVX2
// when the toolchain can build them); the dispatch layer in
// src/automata/simd/ picks the widest variant the *running* CPU supports.
// `HETOPT_FORCE_ISA` overrides the pick so every code path is testable on any
// host: forcing a level the machine cannot run is a hard error, never a
// silent fallback (a bench labeled "avx2" must actually have run AVX2).
//
// On non-x86 targets every feature probe reports false and only the scalar
// level is available; the API shape is identical.

#include <optional>
#include <string>

namespace hetopt::util {

/// The ISA tiers the dispatch layer distinguishes, narrowest first. The
/// numeric order is meaningful: dispatch picks the largest supported value.
enum class IsaLevel : int {
  kScalar = 0,  ///< portable C++, bit-identical reference for every kernel
  kSse2 = 1,    ///< 128-bit vectors (x86-64 baseline)
  kAvx2 = 2,    ///< 256-bit vectors
};

inline constexpr int kIsaLevelCount = 3;

[[nodiscard]] constexpr const char* to_string(IsaLevel level) noexcept {
  switch (level) {
    case IsaLevel::kScalar:
      return "scalar";
    case IsaLevel::kSse2:
      return "sse2";
    case IsaLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

/// Parses "scalar" / "sse2" / "avx2"; nullopt on anything else.
[[nodiscard]] std::optional<IsaLevel> isa_from_string(const std::string& name) noexcept;

/// What the running CPU can execute (independent of what was compiled).
struct CpuFeatures {
  bool sse2 = false;
  bool ssse3 = false;
  bool avx = false;
  bool avx2 = false;
  /// Brand string from CPUID leaves 0x80000002-4 ("unknown" off x86 or when
  /// the leaves are unavailable), trimmed of padding.
  std::string model_name = "unknown";
};

/// The cached CPUID probe of the running machine. The probe runs once; the
/// result never changes for the life of the process.
[[nodiscard]] const CpuFeatures& cpu_features();

/// The widest IsaLevel the running CPU supports.
[[nodiscard]] IsaLevel detected_isa();

/// The `HETOPT_FORCE_ISA` override, re-read on every call so tests can set
/// and clear it around engine construction. Returns nullopt when the
/// variable is unset or empty; throws std::runtime_error on an
/// unrecognized value (a typo must not silently run the wrong kernel).
[[nodiscard]] std::optional<IsaLevel> forced_isa();

/// True when `level` can execute on the running CPU (scalar always can).
[[nodiscard]] bool cpu_supports(IsaLevel level);

}  // namespace hetopt::util
