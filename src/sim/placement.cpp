#include "sim/placement.hpp"

#include <algorithm>
#include <stdexcept>

namespace hetopt::sim {

namespace {

/// Spread placement: one thread per core until all cores have one, then
/// round-robin extra threads (each contributing smt_yield units).
[[nodiscard]] Placement spread(const ProcessorSpec& spec, int threads) {
  Placement p;
  p.cores_used = std::min(threads, spec.cores);
  const int extra = threads - p.cores_used;
  p.thread_units = static_cast<double>(p.cores_used) + spec.smt_yield * extra;
  return p;
}

/// Packed placement: fill each core's SMT ways before opening a new core.
[[nodiscard]] Placement packed(const ProcessorSpec& spec, int threads) {
  Placement p;
  p.cores_used = std::min(spec.cores, (threads + spec.smt_ways - 1) / spec.smt_ways);
  const int extra = threads - p.cores_used;  // threads beyond the first on a core
  p.thread_units = static_cast<double>(p.cores_used) + spec.smt_yield * extra;
  return p;
}

void check_threads(const ProcessorSpec& spec, int threads) {
  if (threads < 1) throw std::invalid_argument("placement: threads < 1");
  if (threads > spec.max_threads()) {
    throw std::invalid_argument("placement: " + std::to_string(threads) +
                                " threads exceed " + spec.name + " capacity of " +
                                std::to_string(spec.max_threads()));
  }
}

}  // namespace

Placement host_placement(const ProcessorSpec& spec, int threads,
                         parallel::HostAffinity affinity) {
  check_threads(spec, threads);
  switch (affinity) {
    case parallel::HostAffinity::kScatter:
      return spread(spec, threads);
    case parallel::HostAffinity::kCompact:
      return packed(spec, threads);
    case parallel::HostAffinity::kNone: {
      Placement p = spread(spec, threads);
      p.penalty = 0.96;  // OS migrations / imbalance
      return p;
    }
  }
  throw std::logic_error("host_placement: bad affinity");
}

Placement device_placement(const ProcessorSpec& spec, int threads,
                           parallel::DeviceAffinity affinity) {
  check_threads(spec, threads);
  switch (affinity) {
    case parallel::DeviceAffinity::kBalanced:
      return spread(spec, threads);
    case parallel::DeviceAffinity::kScatter: {
      Placement p = spread(spec, threads);
      p.penalty = 0.985;  // slightly worse cache-neighbour locality
      return p;
    }
    case parallel::DeviceAffinity::kCompact:
      return packed(spec, threads);
  }
  throw std::logic_error("device_placement: bad affinity");
}

double throughput_gbps(const ProcessorSpec& spec, const Placement& p) {
  if (p.cores_used < 1) throw std::invalid_argument("throughput: no cores used");
  const double contention = 1.0 + spec.contention_beta * (p.cores_used - 1);
  return spec.per_thread_gbps * p.thread_units / contention * p.penalty;
}

}  // namespace hetopt::sim
