// The simulated heterogeneous machine: deterministic analytic time surface
// plus reproducible measurement noise. This is the stand-in for running the
// DNA application on the paper's testbed — every optimizer and the ML
// training pipeline consume (configuration -> seconds) pairs from here.
#pragma once

#include <cstdint>

#include "parallel/affinity.hpp"
#include "sim/spec.hpp"

namespace hetopt::sim {

/// Execution-time queries. Sizes are megabytes of DNA sequence (the paper's
/// unit). `repetition` distinguishes repeated measurements of the same
/// configuration (different noise draw); the noiseless surface is obtained
/// from the *_time_model functions.
class Machine {
 public:
  explicit Machine(MachineSpec spec);

  [[nodiscard]] const MachineSpec& spec() const noexcept { return spec_; }

  // --- Noiseless analytic surface -----------------------------------------
  /// Time for the host CPUs to scan `mb` megabytes. 0 bytes -> 0 s.
  [[nodiscard]] double host_time_model(double mb, int threads,
                                       parallel::HostAffinity affinity) const;
  /// Time for the device to scan `mb` megabytes including offload costs
  /// (launch latency + non-overlapped part of the PCIe transfer; the bulk of
  /// the transfer streams concurrently with compute). 0 bytes -> 0 s.
  [[nodiscard]] double device_time_model(double mb, int threads,
                                         parallel::DeviceAffinity affinity) const;

  // --- Noisy "measurements" -------------------------------------------------
  /// Measured host time: model x lognormal(sigma). Deterministic in
  /// (spec seed, arguments, repetition).
  [[nodiscard]] double measure_host(double mb, int threads, parallel::HostAffinity affinity,
                                    std::uint64_t repetition = 0) const;
  [[nodiscard]] double measure_device(double mb, int threads,
                                      parallel::DeviceAffinity affinity,
                                      std::uint64_t repetition = 0) const;

  /// The paper's objective (Eq. 2): host and device run overlapped, so the
  /// application finishes when the slower side does.
  /// `host_percent` of `total_mb` goes to the host, the rest to the device.
  [[nodiscard]] double measure_combined(double total_mb, double host_percent, int host_threads,
                                        parallel::HostAffinity host_affinity,
                                        int device_threads,
                                        parallel::DeviceAffinity device_affinity,
                                        std::uint64_t repetition = 0) const;
  /// Noiseless counterpart of measure_combined.
  [[nodiscard]] double combined_time_model(double total_mb, double host_percent,
                                           int host_threads,
                                           parallel::HostAffinity host_affinity,
                                           int device_threads,
                                           parallel::DeviceAffinity device_affinity) const;

 private:
  [[nodiscard]] double noise_factor(std::uint64_t stream, double sigma,
                                    std::uint64_t repetition) const;

  MachineSpec spec_;
};

/// Convenience: a Machine built from emil_spec().
[[nodiscard]] Machine emil_machine();

}  // namespace hetopt::sim
