#include "sim/machine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "parallel/partitioner.hpp"
#include "sim/placement.hpp"
#include "util/rng.hpp"

namespace hetopt::sim {

Machine::Machine(MachineSpec spec) : spec_(std::move(spec)) {
  if (spec_.host.cores < 1 || spec_.device.cores < 1) {
    throw std::invalid_argument("Machine: processor without cores");
  }
  if (spec_.offload.pcie_gbps <= 0.0) {
    throw std::invalid_argument("Machine: non-positive PCIe bandwidth");
  }
}

double Machine::host_time_model(double mb, int threads,
                                parallel::HostAffinity affinity) const {
  if (mb < 0.0) throw std::invalid_argument("host_time_model: negative size");
  if (mb == 0.0) return 0.0;
  const Placement p = host_placement(spec_.host, threads, affinity);
  const double gb = mb / 1024.0;
  return spec_.host.serial_overhead_s + gb / throughput_gbps(spec_.host, p);
}

double Machine::device_time_model(double mb, int threads,
                                  parallel::DeviceAffinity affinity) const {
  if (mb < 0.0) throw std::invalid_argument("device_time_model: negative size");
  if (mb == 0.0) return 0.0;
  const Placement p = device_placement(spec_.device, threads, affinity);
  const double gb = mb / 1024.0;
  const double compute = gb / throughput_gbps(spec_.device, p);
  const double transfer = gb / spec_.offload.pcie_gbps;
  // Streaming offload: compute overlaps all but the leading buffer fill of
  // the transfer; the device finishes no earlier than the transfer itself.
  const double overlapped = std::max(
      compute + spec_.offload.non_overlapped_fraction * transfer, transfer);
  return spec_.offload.launch_latency_s + spec_.device.serial_overhead_s + overlapped;
}

double Machine::noise_factor(std::uint64_t stream, double sigma,
                             std::uint64_t repetition) const {
  util::Xoshiro256 rng(util::hash_combine(util::hash_combine(spec_.seed, stream), repetition));
  return rng.lognormal_factor(sigma);
}

namespace {

/// Stable stream id for a measurement site. Sizes are quantized to whole
/// kilobytes so logically-equal configurations share a noise stream.
[[nodiscard]] std::uint64_t stream_id(std::uint64_t env, double mb, int threads,
                                      std::uint64_t affinity) {
  const auto size_kb = static_cast<std::uint64_t>(mb * 1024.0 + 0.5);
  std::uint64_t h = util::hash_combine(env, size_kb);
  h = util::hash_combine(h, static_cast<std::uint64_t>(threads));
  return util::hash_combine(h, affinity);
}

}  // namespace

double Machine::measure_host(double mb, int threads, parallel::HostAffinity affinity,
                             std::uint64_t repetition) const {
  const double t = host_time_model(mb, threads, affinity);
  if (t == 0.0) return 0.0;
  double sigma = spec_.host_noise.sigma;
  if (affinity == parallel::HostAffinity::kNone) {
    sigma *= spec_.host_noise.unpinned_multiplier;
  }
  const std::uint64_t stream =
      stream_id(0x484f5354ULL /*HOST*/, mb, threads, static_cast<std::uint64_t>(affinity));
  return t * noise_factor(stream, sigma, repetition);
}

double Machine::measure_device(double mb, int threads, parallel::DeviceAffinity affinity,
                               std::uint64_t repetition) const {
  const double t = device_time_model(mb, threads, affinity);
  if (t == 0.0) return 0.0;
  const std::uint64_t stream =
      stream_id(0x44455649ULL /*DEVI*/, mb, threads, static_cast<std::uint64_t>(affinity));
  return t * noise_factor(stream, spec_.device_noise.sigma, repetition);
}

double Machine::combined_time_model(double total_mb, double host_percent, int host_threads,
                                    parallel::HostAffinity host_affinity, int device_threads,
                                    parallel::DeviceAffinity device_affinity) const {
  if (host_percent < 0.0 || host_percent > 100.0) {
    throw std::invalid_argument("combined_time_model: host_percent out of [0,100]");
  }
  const double host_mb = total_mb * host_percent / 100.0;
  const double device_mb = total_mb - host_mb;
  return std::max(host_time_model(host_mb, host_threads, host_affinity),
                  device_time_model(device_mb, device_threads, device_affinity));
}

double Machine::measure_combined(double total_mb, double host_percent, int host_threads,
                                 parallel::HostAffinity host_affinity, int device_threads,
                                 parallel::DeviceAffinity device_affinity,
                                 std::uint64_t repetition) const {
  if (host_percent < 0.0 || host_percent > 100.0) {
    throw std::invalid_argument("measure_combined: host_percent out of [0,100]");
  }
  const double host_mb = total_mb * host_percent / 100.0;
  const double device_mb = total_mb - host_mb;
  return std::max(measure_host(host_mb, host_threads, host_affinity, repetition),
                  measure_device(device_mb, device_threads, device_affinity, repetition));
}

Machine emil_machine() { return Machine(emil_spec()); }

}  // namespace hetopt::sim
