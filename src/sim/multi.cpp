#include "sim/multi.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/placement.hpp"

namespace hetopt::sim {

double ShareVector::total_percent() const noexcept {
  double total = host_percent;
  for (double d : device_percent) total += d;
  return total;
}

MultiDeviceMachine::MultiDeviceMachine(ProcessorSpec host, std::vector<DeviceContext> devices)
    : host_(std::move(host)), devices_(std::move(devices)) {
  if (host_.cores < 1) throw std::invalid_argument("MultiDeviceMachine: host has no cores");
  for (const DeviceContext& d : devices_) {
    if (d.spec.cores < 1) {
      throw std::invalid_argument("MultiDeviceMachine: device has no cores");
    }
    if (d.threads < 1 || d.threads > d.spec.max_threads()) {
      throw std::invalid_argument("MultiDeviceMachine: device thread count out of range");
    }
    if (d.offload.pcie_gbps <= 0.0) {
      throw std::invalid_argument("MultiDeviceMachine: non-positive PCIe bandwidth");
    }
  }
}

double MultiDeviceMachine::host_time(double mb, int threads,
                                     parallel::HostAffinity affinity) const {
  if (mb < 0.0) throw std::invalid_argument("MultiDeviceMachine: negative size");
  if (mb == 0.0) return 0.0;
  const Placement p = host_placement(host_, threads, affinity);
  return host_.serial_overhead_s + mb / 1024.0 / throughput_gbps(host_, p);
}

double MultiDeviceMachine::device_time(std::size_t i, double mb) const {
  if (i >= devices_.size()) throw std::out_of_range("MultiDeviceMachine: device index");
  if (mb < 0.0) throw std::invalid_argument("MultiDeviceMachine: negative size");
  if (mb == 0.0) return 0.0;
  const DeviceContext& d = devices_[i];
  const Placement p = device_placement(d.spec, d.threads, d.affinity);
  const double gb = mb / 1024.0;
  const double compute = gb / throughput_gbps(d.spec, p);
  const double transfer = gb / d.offload.pcie_gbps;
  const double overlapped =
      std::max(compute + d.offload.non_overlapped_fraction * transfer, transfer);
  return d.offload.launch_latency_s + d.spec.serial_overhead_s + overlapped;
}

double MultiDeviceMachine::makespan(double total_mb, const ShareVector& shares,
                                    int host_threads,
                                    parallel::HostAffinity host_affinity) const {
  if (shares.device_percent.size() != devices_.size()) {
    throw std::invalid_argument("MultiDeviceMachine: share vector size mismatch");
  }
  if (std::abs(shares.total_percent() - 100.0) > 1e-6) {
    throw std::invalid_argument("MultiDeviceMachine: shares must sum to 100");
  }
  double worst = host_time(total_mb * shares.host_percent / 100.0, host_threads,
                           host_affinity);
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    worst = std::max(
        worst, device_time(i, total_mb * shares.device_percent[i] / 100.0));
  }
  return worst;
}

namespace {

/// Megabytes participant can finish within deadline T given its affine time
/// model t(mb) = overhead + mb / rate (rate in MB/s of wall time).
[[nodiscard]] double absorbable_mb(double deadline_s, double overhead_s,
                                   double mb_per_second) {
  if (deadline_s <= overhead_s) return 0.0;
  return (deadline_s - overhead_s) * mb_per_second;
}

struct AffineRate {
  double overhead_s = 0.0;
  double mb_per_second = 0.0;
};

/// Inverts the overlapped offload model into the affine form
/// t(mb) = overhead + mb / rate used by the water-filling solver.
[[nodiscard]] AffineRate device_affine_rate(const DeviceContext& d, int threads,
                                            parallel::DeviceAffinity affinity) {
  const Placement p = device_placement(d.spec, threads, affinity);
  const double compute_rate = throughput_gbps(d.spec, p) * 1024.0;
  const double transfer_rate = d.offload.pcie_gbps * 1024.0;
  const double per_mb = std::max(
      1.0 / compute_rate + d.offload.non_overlapped_fraction / transfer_rate,
      1.0 / transfer_rate);
  return {d.offload.launch_latency_s + d.spec.serial_overhead_s, 1.0 / per_mb};
}

}  // namespace

double MultiDeviceMachine::device_time(std::size_t i, double mb, int threads,
                                       parallel::DeviceAffinity affinity) const {
  if (i >= devices_.size()) throw std::out_of_range("MultiDeviceMachine: device index");
  if (mb < 0.0) throw std::invalid_argument("MultiDeviceMachine: negative size");
  if (mb == 0.0) return 0.0;
  const DeviceContext& d = devices_[i];
  const int clamped = std::clamp(threads, 1, d.spec.max_threads());
  const AffineRate rate = device_affine_rate(d, clamped, affinity);
  return rate.overhead_s + mb / rate.mb_per_second;
}

ShareVector MultiDeviceMachine::balance(double total_mb, int host_threads,
                                        parallel::HostAffinity host_affinity,
                                        double tolerance_s) const {
  if (total_mb <= 0.0) throw std::invalid_argument("MultiDeviceMachine: non-positive size");

  // Effective affine models. Host: serial_overhead + mb / host_rate.
  const Placement hp = host_placement(host_, host_threads, host_affinity);
  const double host_rate = throughput_gbps(host_, hp) * 1024.0;  // MB/s

  std::vector<AffineRate> rates;
  rates.reserve(devices_.size());
  for (const DeviceContext& d : devices_) {
    rates.push_back(device_affine_rate(d, d.threads, d.affinity));
  }

  // Bisection on the common finish time T.
  double lo = 0.0;
  double hi = host_time(total_mb, host_threads, host_affinity);  // host alone suffices
  const auto capacity = [&](double t) {
    double mb = absorbable_mb(t, host_.serial_overhead_s, host_rate);
    for (const AffineRate& r : rates) mb += absorbable_mb(t, r.overhead_s, r.mb_per_second);
    return mb;
  };
  for (int iter = 0; iter < 200 && hi - lo > tolerance_s; ++iter) {
    const double mid = 0.5 * (lo + hi);
    (capacity(mid) >= total_mb ? hi : lo) = mid;
  }
  const double t = hi;

  ShareVector shares;
  shares.device_percent.resize(devices_.size(), 0.0);
  double assigned = absorbable_mb(t, host_.serial_overhead_s, host_rate);
  shares.host_percent = std::min(100.0, 100.0 * assigned / total_mb);
  double remaining_pct = 100.0 - shares.host_percent;
  for (std::size_t i = 0; i < devices_.size() && remaining_pct > 0.0; ++i) {
    const double mb = absorbable_mb(t, rates[i].overhead_s, rates[i].mb_per_second);
    const double pct = std::min(remaining_pct, 100.0 * mb / total_mb);
    shares.device_percent[i] = pct;
    remaining_pct -= pct;
  }
  // Any sliver left from rounding goes to the host (it has no join latency).
  shares.host_percent += remaining_pct;
  shares.makespan_s = makespan(total_mb, shares, host_threads, host_affinity);
  return shares;
}

ShareVector MultiDeviceMachine::equal_split(double total_mb, int host_threads,
                                            parallel::HostAffinity host_affinity) const {
  ShareVector shares;
  const double each = 100.0 / static_cast<double>(devices_.size() + 1);
  shares.host_percent = each;
  shares.device_percent.assign(devices_.size(), each);
  // Fix rounding so the sum is exactly 100.
  shares.host_percent = 100.0;
  for (double d : shares.device_percent) shares.host_percent -= d;
  shares.makespan_s = makespan(total_mb, shares, host_threads, host_affinity);
  return shares;
}

ShareVector MultiDeviceMachine::distribute(double total_mb, double host_percent,
                                           int host_threads,
                                           parallel::HostAffinity host_affinity,
                                           int device_threads,
                                           parallel::DeviceAffinity device_affinity,
                                           double tolerance_s) const {
  if (total_mb <= 0.0) throw std::invalid_argument("MultiDeviceMachine: non-positive size");
  const double hp = std::clamp(host_percent, 0.0, 100.0);

  ShareVector shares;
  shares.device_percent.resize(devices_.size(), 0.0);

  if (devices_.empty() || hp >= 100.0) {
    // No devices to offload to (or nothing left for them): host takes all.
    shares.host_percent = 100.0;
    shares.makespan_s = host_time(total_mb, host_threads, host_affinity);
    return shares;
  }

  shares.host_percent = hp;
  const double device_mb = total_mb * (100.0 - hp) / 100.0;

  // Per-device affine models under the uniform (clamped) threading.
  std::vector<AffineRate> rates;
  rates.reserve(devices_.size());
  for (const DeviceContext& d : devices_) {
    const int threads = std::clamp(device_threads, 1, d.spec.max_threads());
    rates.push_back(device_affine_rate(d, threads, device_affinity));
  }

  // Water-filling across the devices only: bisection on their common finish
  // time T. Device 0 alone absorbing everything bounds T from above.
  double lo = 0.0;
  double hi = rates.front().overhead_s + device_mb / rates.front().mb_per_second;
  const auto capacity = [&](double t) {
    double mb = 0.0;
    for (const AffineRate& r : rates) mb += absorbable_mb(t, r.overhead_s, r.mb_per_second);
    return mb;
  };
  for (int iter = 0; iter < 200 && hi - lo > tolerance_s; ++iter) {
    const double mid = 0.5 * (lo + hi);
    (capacity(mid) >= device_mb ? hi : lo) = mid;
  }
  const double t = hi;

  double remaining_pct = 100.0 - hp;
  std::size_t largest = 0;
  for (std::size_t i = 0; i < devices_.size() && remaining_pct > 0.0; ++i) {
    const double mb = absorbable_mb(t, rates[i].overhead_s, rates[i].mb_per_second);
    const double pct = std::min(remaining_pct, 100.0 * mb / total_mb);
    shares.device_percent[i] = pct;
    remaining_pct -= pct;
    if (pct > shares.device_percent[largest]) largest = i;
  }
  // Any sliver left from rounding goes to the most capable device (the host's
  // share is fixed by contract here).
  shares.device_percent[largest] += remaining_pct;

  // Makespan under the overridden threading (makespan() would use each
  // device's stored context, so compute from the affine models directly).
  double worst = host_time(total_mb * hp / 100.0, host_threads, host_affinity);
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    const double mb = total_mb * shares.device_percent[i] / 100.0;
    if (mb > 0.0) {
      worst = std::max(worst, rates[i].overhead_s + mb / rates[i].mb_per_second);
    }
  }
  shares.makespan_s = worst;
  return shares;
}

MultiDeviceMachine emil_with_phis(std::size_t count) {
  const MachineSpec base = emil_spec();
  std::vector<DeviceContext> devices;
  devices.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    DeviceContext d;
    d.spec = base.device;
    d.offload = base.offload;
    d.threads = base.device.max_threads();
    d.affinity = parallel::DeviceAffinity::kBalanced;
    devices.push_back(d);
  }
  return MultiDeviceMachine(base.host, std::move(devices));
}

}  // namespace hetopt::sim
