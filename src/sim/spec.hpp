// Hardware specifications for the simulated heterogeneous platform.
//
// The paper's testbed ("Emil") is two 12-core Intel Xeon E5-2695v2 CPUs
// (48 HW threads) plus one Intel Xeon Phi 7120P (61 cores, 244 HW threads,
// one core reserved for the µOS). We do not have that hardware, so the
// `sim` library models the *time surface* T(config, bytes) those machines
// produce. All constants below are calibrated against numbers the paper
// reports (see DESIGN.md §5):
//
//   * host execution-time span 0.74–5.5 s over full genomes
//       -> per_thread_gbps = 0.30, contention_beta = 0.045, smt_yield = 0.22
//          (2 threads on 3.17 GB = 5.52 s; 48 threads = 0.73 s)
//   * device span 0.9–42 s
//       -> per_thread_gbps = 0.0377, smt_yield = 0.35, contention_beta = 0.00488
//          (2 threads on 3.17 GB = 42.3 s; 240 threads ≈ 0.88 s compute)
//   * Fig. 2 crossovers (190 MB -> CPU-only; 3250 MB/48 t -> ~70/30;
//     3250 MB/4 t -> ~30/70) -> launch_latency 0.068 s, streaming offload
//     overlap with PCIe at 6.2 GB/s
//   * prediction percent errors (5.2 % host, 3.1 % device)
//       -> lognormal noise sigma 0.045 / 0.027
#pragma once

#include <cstdint>
#include <string>

namespace hetopt::sim {

/// Scaling model of one processor (a multicore CPU or a many-core device).
struct ProcessorSpec {
  std::string name;
  int cores = 1;            // physical cores available for work
  int smt_ways = 1;         // hardware threads per core
  double per_thread_gbps = 0.1;  // scan throughput of 1 thread alone on 1 core
  double smt_yield = 0.3;   // marginal throughput of each extra thread on a core
  double contention_beta = 0.01;  // shared-resource slowdown per extra active core
  double serial_overhead_s = 0.0; // fixed runtime startup cost per execution

  [[nodiscard]] int max_threads() const noexcept { return cores * smt_ways; }
};

/// Offload path (PCIe) between host and device.
struct OffloadSpec {
  double launch_latency_s = 0.068;  // offload pragma + runtime launch
  double pcie_gbps = 6.2;          // effective transfer bandwidth
  /// Fraction of the transfer that cannot be overlapped with device compute
  /// (first buffer fill before compute can start).
  double non_overlapped_fraction = 0.08;
};

/// Multiplicative lognormal measurement noise (median 1).
struct NoiseSpec {
  double sigma = 0.05;
  /// Extra variance multiplier when the OS places threads freely
  /// (host affinity "none").
  double unpinned_multiplier = 1.5;
};

/// A full machine: host + device + interconnect + noise.
struct MachineSpec {
  ProcessorSpec host;
  ProcessorSpec device;
  OffloadSpec offload;
  NoiseSpec host_noise;
  NoiseSpec device_noise;
  std::uint64_t seed = 0x454d494cULL;  // "EMIL"
};

/// The paper's evaluation platform.
[[nodiscard]] MachineSpec emil_spec();

}  // namespace hetopt::sim
