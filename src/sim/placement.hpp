// Thread placement: how an affinity policy maps N software threads onto the
// cores of a processor, and what that does to delivered throughput.
#pragma once

#include "parallel/affinity.hpp"
#include "sim/spec.hpp"

namespace hetopt::sim {

/// The throughput-relevant shape of a placement.
struct Placement {
  int cores_used = 0;      // distinct physical cores hosting >= 1 thread
  double thread_units = 0; // 1 per first thread on a core, smt_yield per extra
  double penalty = 1.0;    // multiplicative placement quality factor
};

/// Host placements (Intel OpenMP semantics):
///  - scatter: round-robin across cores; threads share a core only once all
///    cores are occupied.
///  - compact: fill each core's SMT ways before moving to the next core.
///  - none:    the OS spreads threads like scatter but with a small penalty
///    for migrations/imbalance.
[[nodiscard]] Placement host_placement(const ProcessorSpec& spec, int threads,
                                       parallel::HostAffinity affinity);

/// Device placements (Intel MIC KMP_AFFINITY semantics):
///  - balanced: threads spread evenly, neighbours on the same core — the
///    recommended policy; modelled as ideal spread.
///  - scatter:  round-robin; same core usage, slightly worse locality for
///    this streaming workload (small penalty).
///  - compact:  fill 4-way cores first; poor for low thread counts.
[[nodiscard]] Placement device_placement(const ProcessorSpec& spec, int threads,
                                         parallel::DeviceAffinity affinity);

/// Delivered scan throughput (GB/s) of a placement on a processor:
///   per_thread_gbps * thread_units / (1 + beta * (cores_used - 1)) * penalty
[[nodiscard]] double throughput_gbps(const ProcessorSpec& spec, const Placement& p);

}  // namespace hetopt::sim
