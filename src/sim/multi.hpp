// Multi-accelerator extension. The paper's platform section notes nodes may
// carry "one to eight accelerators" and names adaptive workload-aware
// distribution as future work; this module provides that generalization on
// top of the same performance model: one host plus K (possibly different)
// devices, a share vector instead of a single fraction, and a water-filling
// solver that equalizes completion times.
#pragma once

#include <vector>

#include "parallel/affinity.hpp"
#include "sim/machine.hpp"
#include "sim/spec.hpp"

namespace hetopt::sim {

/// One accelerator's execution context within a multi-device node.
struct DeviceContext {
  ProcessorSpec spec;
  OffloadSpec offload;
  int threads = 1;
  parallel::DeviceAffinity affinity = parallel::DeviceAffinity::kBalanced;
};

struct ShareVector {
  double host_percent = 0.0;              // share of the host, in percent
  std::vector<double> device_percent;     // one share per device, in percent
  double makespan_s = 0.0;                // max over all participants

  /// Shares always sum to 100 (within fp rounding).
  [[nodiscard]] double total_percent() const noexcept;
};

/// A host plus K accelerators. Noiseless model only (this is an analysis
/// tool; the stochastic layer lives in Machine).
class MultiDeviceMachine {
 public:
  MultiDeviceMachine(ProcessorSpec host, std::vector<DeviceContext> devices);

  [[nodiscard]] std::size_t device_count() const noexcept { return devices_.size(); }

  /// Time for the host to scan `mb` with the given threading. 0 MB -> 0 s.
  [[nodiscard]] double host_time(double mb, int threads,
                                 parallel::HostAffinity affinity) const;
  /// Time for device `i` to scan `mb` (launch + streamed transfer + compute).
  [[nodiscard]] double device_time(std::size_t i, double mb) const;
  /// Same, but with the device's threading overridden (threads clamped to
  /// the device's limit) — the model distribute() prices candidates with.
  [[nodiscard]] double device_time(std::size_t i, double mb, int threads,
                                   parallel::DeviceAffinity affinity) const;

  /// Makespan of an explicit share assignment (percent per participant;
  /// must sum to ~100).
  [[nodiscard]] double makespan(double total_mb, const ShareVector& shares, int host_threads,
                                parallel::HostAffinity host_affinity) const;

  /// Water-filling: find the share vector minimizing the makespan for the
  /// given host threading, by bisection on the finish time T — participant i
  /// absorbs the bytes it can finish within T (devices join only once T
  /// exceeds their launch latency). Exact for this model up to `tolerance`.
  [[nodiscard]] ShareVector balance(double total_mb, int host_threads,
                                    parallel::HostAffinity host_affinity,
                                    double tolerance_s = 1e-9) const;

  /// Baseline: equal split across host and all devices.
  [[nodiscard]] ShareVector equal_split(double total_mb, int host_threads,
                                        parallel::HostAffinity host_affinity) const;

  /// Evaluator glue (core::MultiDeviceMeasurementEvaluator): the host keeps
  /// `host_percent` of the input, every device runs with the given uniform
  /// threading (clamped to its own limit), and the device remainder is split
  /// across the devices by the water-filling solver so they finish together.
  /// With no devices (or host_percent >= 100) the host takes everything.
  /// Returned shares sum to 100 within fp rounding; makespan_s is filled in.
  [[nodiscard]] ShareVector distribute(double total_mb, double host_percent, int host_threads,
                                       parallel::HostAffinity host_affinity, int device_threads,
                                       parallel::DeviceAffinity device_affinity,
                                       double tolerance_s = 1e-9) const;

 private:
  ProcessorSpec host_;
  std::vector<DeviceContext> devices_;
};

/// Convenience: the Emil host plus `count` Xeon Phi 7120P cards at full
/// threading (240, balanced).
[[nodiscard]] MultiDeviceMachine emil_with_phis(std::size_t count);

}  // namespace hetopt::sim
