#include "sim/spec.hpp"

namespace hetopt::sim {

MachineSpec emil_spec() {
  MachineSpec m;

  m.host.name = "2x Intel Xeon E5-2695v2";
  m.host.cores = 24;  // 2 sockets x 12 cores
  m.host.smt_ways = 2;
  m.host.per_thread_gbps = 0.30;
  m.host.smt_yield = 0.22;
  m.host.contention_beta = 0.045;
  m.host.serial_overhead_s = 0.02;

  m.device.name = "Intel Xeon Phi 7120P";
  m.device.cores = 60;  // 61 minus the core running the uOS
  m.device.smt_ways = 4;
  m.device.per_thread_gbps = 0.0377;
  m.device.smt_yield = 0.35;
  m.device.contention_beta = 0.00488;
  m.device.serial_overhead_s = 0.0;  // folded into launch latency

  m.offload.launch_latency_s = 0.068;
  m.offload.pcie_gbps = 6.2;
  m.offload.non_overlapped_fraction = 0.08;

  m.host_noise.sigma = 0.045;
  m.host_noise.unpinned_multiplier = 1.5;
  m.device_noise.sigma = 0.027;
  m.device_noise.unpinned_multiplier = 1.0;  // the device runtime always pins

  return m;
}

}  // namespace hetopt::sim
