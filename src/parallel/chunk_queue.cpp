#include "parallel/chunk_queue.hpp"

#include <limits>
#include <stdexcept>

namespace hetopt::parallel {

ChunkQueue::ChunkQueue(std::size_t size) : size_(size) {
  if (size > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument("ChunkQueue: more than 2^32 - 1 chunks");
  }
  range_.store(pack(0, static_cast<std::uint32_t>(size)), std::memory_order_relaxed);
}

std::optional<std::size_t> ChunkQueue::take_front() noexcept {
  std::uint64_t cur = range_.load(std::memory_order_relaxed);
  for (;;) {
    const auto lo = static_cast<std::uint32_t>(cur >> 32);
    const auto end = static_cast<std::uint32_t>(cur);
    if (lo >= end) return std::nullopt;
    if (range_.compare_exchange_weak(cur, pack(lo + 1, end), std::memory_order_acq_rel,
                                     std::memory_order_relaxed)) {
      return lo;
    }
  }
}

std::optional<std::size_t> ChunkQueue::take_back() noexcept {
  std::uint64_t cur = range_.load(std::memory_order_relaxed);
  for (;;) {
    const auto lo = static_cast<std::uint32_t>(cur >> 32);
    const auto end = static_cast<std::uint32_t>(cur);
    if (lo >= end) return std::nullopt;
    if (range_.compare_exchange_weak(cur, pack(lo, end - 1), std::memory_order_acq_rel,
                                     std::memory_order_relaxed)) {
      return end - 1;
    }
  }
}

std::size_t ChunkQueue::close() noexcept {
  closed_.store(true, std::memory_order_release);
  // One atomic swap empties the range; a taker's in-flight CAS built on a
  // pre-close snapshot fails against the new value and its retry observes
  // lo >= end. pack(0, 0) is a value no live queue revisits once non-empty,
  // so no ABA window exists for a stale CAS to sneak a claim through.
  const std::uint64_t old = range_.exchange(pack(0, 0), std::memory_order_acq_rel);
  const auto lo = static_cast<std::uint32_t>(old >> 32);
  const auto end = static_cast<std::uint32_t>(old);
  return lo < end ? end - lo : 0;
}

bool ChunkQueue::closed() const noexcept { return closed_.load(std::memory_order_acquire); }

std::size_t ChunkQueue::remaining() const noexcept {
  const std::uint64_t cur = range_.load(std::memory_order_acquire);
  const auto lo = static_cast<std::uint32_t>(cur >> 32);
  const auto end = static_cast<std::uint32_t>(cur);
  return lo < end ? end - lo : 0;
}

}  // namespace hetopt::parallel
