// A fixed-size thread pool with a mutex/condvar task queue.
//
// Design notes (cf. C++ Core Guidelines CP.*):
//  - threads are joined in the destructor (CP.23/CP.25: no detach);
//  - tasks are passed by value (CP.31);
//  - the queue mutex protects exactly the data it is declared next to (CP.50),
//    and that protection is machine-checked: the guarded members carry
//    HETOPT_GUARDED_BY and the locking goes through the annotated
//    util::Mutex/util::MutexLock/util::CondVar, so `clang++ -Wthread-safety`
//    rejects any access path that could race (see util/annotations.hpp);
//  - waiting always happens under a condition (CP.42).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "util/annotations.hpp"
#include "util/sync.hpp"

namespace hetopt::parallel {

class ThreadPool {
 public:
  /// Runs once on each worker thread right after it starts, before it takes
  /// any task — e.g. to apply an affinity policy (parallel/affinity.hpp).
  using WorkerInit = std::function<void(std::size_t worker_index)>;

  /// Creates `thread_count` workers (at least 1). When `init` is set, every
  /// worker invokes it (with its index) before entering the task loop;
  /// exceptions from `init` are swallowed — placement is best-effort and must
  /// never take the pool down.
  explicit ThreadPool(std::size_t thread_count, WorkerInit init = nullptr);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

  /// True when the pool was built with a WorkerInit hook (e.g. pinned
  /// workers). Callers with a run-on-caller fast path must not take it then:
  /// work would silently escape the configured placement.
  [[nodiscard]] bool has_worker_init() const noexcept { return has_worker_init_; }

  /// Enqueues a task; returns a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    {
      const util::MutexLock lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs body(i) for i in [0, n) across the pool and blocks until all
  /// iterations finish. Iterations are grouped into contiguous chunks, one
  /// per worker (static schedule — the paper's workloads are uniform).
  /// Exceptions from the body are propagated (the first one).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Runs body(chunk_index, begin, end) over [0, n) split into `chunks`
  /// contiguous ranges. Useful when the body wants the whole range at once.
  void parallel_chunks(std::size_t n, std::size_t chunks,
                       const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

  /// Task-pull mode: runs body(worker_slot) once per pool worker,
  /// concurrently, and blocks until every body returns. The body typically
  /// loops claiming work from a parallel::ChunkQueue until it drains —
  /// demand-driven scheduling, where an idle worker pulls the next chunk
  /// instead of owning a pre-assigned share. `worker_slot` is the pull-loop
  /// index in [0, thread_count()), not a thread id. Exceptions from the body
  /// are propagated (the first one).
  void parallel_pull(const std::function<void(std::size_t)>& body);

  /// Rethrows the first exception that escaped a task on a worker thread
  /// (and clears it). Such an exception would otherwise cross the worker
  /// loop's thread boundary and terminate the process; instead the worker
  /// records it and keeps serving tasks, and the join points
  /// (parallel_for/chunks/pull) call this so the error surfaces on the
  /// caller thread. No-op when no worker error is pending.
  void rethrow_worker_error();

 private:
  void worker_loop();
  void record_worker_error(std::exception_ptr error) noexcept;

  std::vector<std::thread> workers_;
  util::Mutex mutex_;
  util::CondVar cv_;  // signaled on submit (one) and shutdown (all)
  std::deque<std::function<void()>> queue_ HETOPT_GUARDED_BY(mutex_);
  bool stopping_ HETOPT_GUARDED_BY(mutex_) = false;
  std::exception_ptr worker_error_ HETOPT_GUARDED_BY(mutex_);  // first task escapee
  bool has_worker_init_ = false;  // immutable after construction
};

/// Splits n items into k contiguous chunks as evenly as possible.
/// Chunk i covers [chunk_begin(n,k,i), chunk_begin(n,k,i+1)). The first
/// (n mod k) chunks get one extra item. chunk_begin(n,k,k) == n.
[[nodiscard]] constexpr std::size_t chunk_begin(std::size_t n, std::size_t k,
                                                std::size_t i) noexcept {
  if (k == 0) return 0;
  const std::size_t base = n / k;
  const std::size_t extra = n % k;
  return i * base + (i < extra ? i : extra);
}

}  // namespace hetopt::parallel
