#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <exception>

namespace hetopt::parallel {

ThreadPool::ThreadPool(std::size_t thread_count, WorkerInit init)
    : has_worker_init_(init != nullptr) {
  const std::size_t n = std::max<std::size_t>(1, thread_count);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i, init] {
      if (init) {
        try {
          init(i);
        } catch (...) {  // placement is best-effort
        }
      }
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    const util::MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      const util::MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) cv_.wait(mutex_);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  parallel_chunks(n, thread_count(),
                  [&body](std::size_t /*chunk*/, std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) body(i);
                  });
}

void ThreadPool::parallel_pull(const std::function<void(std::size_t)>& body) {
  // One task per worker; with an idle pool every worker runs one pull loop.
  parallel_chunks(thread_count(), thread_count(),
                  [&body](std::size_t slot, std::size_t, std::size_t) { body(slot); });
}

void ThreadPool::parallel_chunks(
    std::size_t n, std::size_t chunks,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (n == 0 || chunks == 0) return;
  chunks = std::min(chunks, n);

  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = chunk_begin(n, chunks, c);
    const std::size_t end = chunk_begin(n, chunks, c + 1);
    futures.push_back(submit([&body, c, begin, end] { body(c, begin, end); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace hetopt::parallel
