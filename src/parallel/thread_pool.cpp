#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "util/fault.hpp"

namespace hetopt::parallel {

ThreadPool::ThreadPool(std::size_t thread_count, WorkerInit init)
    : has_worker_init_(init != nullptr) {
  const std::size_t n = std::max<std::size_t>(1, thread_count);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i, init] {
      if (init) {
        try {
          init(i);
        } catch (...) {  // hetopt-lint: allow(silent-catch) — placement is best-effort
        }
      }
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    const util::MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      const util::MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) cv_.wait(mutex_);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // The injector must be consulted BEFORE task() runs: completing the task
    // readies its future, which unblocks the caller's join — and the caller
    // owns the (stack-scoped) injector. Reading it after task() races with
    // its destruction; reading it before is ordered by the future handshake.
    // The injected throw still fires after the task body, so no work is lost.
    const util::FaultInjector* injector = util::FaultInjector::current();
    const bool inject_throw = injector != nullptr && injector->worker_throws();
    // The worker loop is a noexcept boundary: an exception escaping here
    // would std::terminate the process. Tasks built by submit() wrap a
    // packaged_task (exceptions land in the future), but raw task functions
    // — and the fault-injection hook below — can throw, so the first
    // escapee is recorded and rethrown at the join points instead.
    try {
      task();
      if (inject_throw) {
        throw util::FaultInjectedError("injected worker-throw after task");
      }
    } catch (...) {
      record_worker_error(std::current_exception());
    }
  }
}

void ThreadPool::record_worker_error(std::exception_ptr error) noexcept {
  const util::MutexLock lock(mutex_);
  if (!worker_error_) worker_error_ = std::move(error);
}

void ThreadPool::rethrow_worker_error() {
  std::exception_ptr error;
  {
    const util::MutexLock lock(mutex_);
    error = std::exchange(worker_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  parallel_chunks(n, thread_count(),
                  [&body](std::size_t /*chunk*/, std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) body(i);
                  });
}

void ThreadPool::parallel_pull(const std::function<void(std::size_t)>& body) {
  // One task per worker; with an idle pool every worker runs one pull loop.
  parallel_chunks(thread_count(), thread_count(),
                  [&body](std::size_t slot, std::size_t, std::size_t) { body(slot); });
}

void ThreadPool::parallel_chunks(
    std::size_t n, std::size_t chunks,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (n == 0 || chunks == 0) return;
  chunks = std::min(chunks, n);

  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = chunk_begin(n, chunks, c);
    const std::size_t end = chunk_begin(n, chunks, c + 1);
    futures.push_back(submit([&body, c, begin, end] { body(c, begin, end); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  rethrow_worker_error();
}

}  // namespace hetopt::parallel
