#include "parallel/batch.hpp"

#include <stdexcept>

#include "parallel/thread_pool.hpp"

namespace hetopt::parallel {

std::vector<double> map_indexed(ThreadPool* pool, std::size_t n,
                                const std::function<double(std::size_t)>& fn) {
  if (!fn) throw std::invalid_argument("map_indexed: null function");
  std::vector<double> out(n);
  if (pool == nullptr || n < 2) {
    for (std::size_t i = 0; i < n; ++i) out[i] = fn(i);
    return out;
  }
  pool->parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace hetopt::parallel
