// Thread-affinity vocabulary shared by the runtime, the performance model
// and the optimizer. Matches Table I of the paper:
//   host   affinity in {none, scatter, compact}
//   device affinity in {balanced, scatter, compact}   (Intel KMP_AFFINITY)
//
// Besides the vocabulary this header provides the *application* of a policy
// to real worker threads (cpu_for_worker / pin_current_thread), used by the
// real-workload measurement path to place ThreadPool workers the way
// KMP_AFFINITY would.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace hetopt::parallel {

enum class HostAffinity : std::uint8_t { kNone = 0, kScatter = 1, kCompact = 2 };
enum class DeviceAffinity : std::uint8_t { kBalanced = 0, kScatter = 1, kCompact = 2 };

inline constexpr std::array<HostAffinity, 3> kAllHostAffinities{
    HostAffinity::kNone, HostAffinity::kScatter, HostAffinity::kCompact};
inline constexpr std::array<DeviceAffinity, 3> kAllDeviceAffinities{
    DeviceAffinity::kBalanced, DeviceAffinity::kScatter, DeviceAffinity::kCompact};

[[nodiscard]] std::string_view to_string(HostAffinity a) noexcept;
[[nodiscard]] std::string_view to_string(DeviceAffinity a) noexcept;

/// Parses the lower-case names used throughout ("none", "scatter", ...).
/// Throws std::invalid_argument on unknown names.
[[nodiscard]] HostAffinity host_affinity_from_string(std::string_view s);
[[nodiscard]] DeviceAffinity device_affinity_from_string(std::string_view s);

/// The CPU worker `worker_index` of `worker_count` should run on under a
/// policy, given `hardware_cpus` online CPUs (KMP_AFFINITY semantics on a
/// flat topology):
///   compact   fill CPUs consecutively (worker i -> cpu i mod N)
///   scatter   consecutive workers as far apart as possible; oversubscribed
///             pools round-robin (neighbouring ids on different CPUs)
///   balanced  spread evenly; oversubscribed pools keep consecutive ids on
///             the same CPU (coincides with scatter when count <= N, as on
///             real single-package hardware)
///   none      no placement (callers should skip pinning; returns worker mod N)
/// Pure and platform-independent, so the mapping itself is unit-testable.
[[nodiscard]] unsigned cpu_for_worker(HostAffinity policy, std::size_t worker_index,
                                      std::size_t worker_count, unsigned hardware_cpus) noexcept;
[[nodiscard]] unsigned cpu_for_worker(DeviceAffinity policy, std::size_t worker_index,
                                      std::size_t worker_count, unsigned hardware_cpus) noexcept;

/// Best-effort pin of the calling thread to cpu_for_worker(...). Returns
/// false (and leaves the thread unpinned) for HostAffinity::kNone, on
/// non-Linux platforms, or when the kernel rejects the mask; measurement
/// never depends on pinning having succeeded.
bool pin_current_thread(HostAffinity policy, std::size_t worker_index,
                        std::size_t worker_count);
bool pin_current_thread(DeviceAffinity policy, std::size_t worker_index,
                        std::size_t worker_count);

}  // namespace hetopt::parallel
