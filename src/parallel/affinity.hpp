// Thread-affinity vocabulary shared by the runtime, the performance model
// and the optimizer. Matches Table I of the paper:
//   host   affinity in {none, scatter, compact}
//   device affinity in {balanced, scatter, compact}   (Intel KMP_AFFINITY)
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace hetopt::parallel {

enum class HostAffinity : std::uint8_t { kNone = 0, kScatter = 1, kCompact = 2 };
enum class DeviceAffinity : std::uint8_t { kBalanced = 0, kScatter = 1, kCompact = 2 };

inline constexpr std::array<HostAffinity, 3> kAllHostAffinities{
    HostAffinity::kNone, HostAffinity::kScatter, HostAffinity::kCompact};
inline constexpr std::array<DeviceAffinity, 3> kAllDeviceAffinities{
    DeviceAffinity::kBalanced, DeviceAffinity::kScatter, DeviceAffinity::kCompact};

[[nodiscard]] std::string_view to_string(HostAffinity a) noexcept;
[[nodiscard]] std::string_view to_string(DeviceAffinity a) noexcept;

/// Parses the lower-case names used throughout ("none", "scatter", ...).
/// Throws std::invalid_argument on unknown names.
[[nodiscard]] HostAffinity host_affinity_from_string(std::string_view s);
[[nodiscard]] DeviceAffinity device_affinity_from_string(std::string_view s);

}  // namespace hetopt::parallel
