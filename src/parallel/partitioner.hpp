// Work partitioning: fraction split between host and device (the paper's
// "DNA sequence fraction" parameter) and overlapped chunking with a halo so
// pattern matches spanning the cut are not lost.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace hetopt::parallel {

/// The host/device byte split for a given workload fraction.
struct FractionSplit {
  std::size_t host_bytes = 0;
  std::size_t device_bytes = 0;
};

/// Splits `total` items so the host receives round(total * percent / 100).
/// `host_percent` must be in [0, 100].
[[nodiscard]] FractionSplit split_by_percent(std::size_t total, double host_percent);

/// A contiguous piece of the input assigned to one worker, with `halo`
/// extra trailing bytes (capped at the input end) so a scanner can complete
/// matches that start near the chunk boundary. Matches are attributed to a
/// chunk by their *start* offset, which keeps counts exact.
struct Chunk {
  std::size_t begin = 0;       // first owned byte
  std::size_t end = 0;         // one past last owned byte
  std::size_t scan_end = 0;    // end + halo, clamped to total
};

/// Splits [0, total) into `count` chunks (fewer if total < count) with the
/// given halo. Chunks tile the range exactly: chunk[i].end == chunk[i+1].begin.
[[nodiscard]] std::vector<Chunk> make_chunks(std::size_t total, std::size_t count,
                                             std::size_t halo);

/// Guided chunking (the OpenMP `guided` shape) for demand-driven pulls: each
/// chunk takes half of what an even split of the *remaining* bytes across
/// `workers` would give, clamped below at `min_chunk`, so sizes decrease
/// from a coarse head (low queue traffic while everyone is busy) to a fine
/// tail (the last pulls can balance stragglers). Chunks tile [0, total)
/// exactly and sizes are non-increasing; halo is 0 (scan_end == end).
[[nodiscard]] std::vector<Chunk> make_chunks_guided(std::size_t total, std::size_t workers,
                                                    std::size_t min_chunk);

/// The tail granularity every scheduling layer uses for guided layouts: a
/// quarter of what an even `chunks`-way split would give (at least 1), so a
/// requested chunk count keeps meaning "this fine, or finer at the tail".
/// Kept here so the matcher- and executor-level guided schedules can never
/// silently diverge on the shape.
[[nodiscard]] constexpr std::size_t guided_min_chunk(std::size_t total,
                                                     std::size_t chunks) noexcept {
  const std::size_t quarter = total / (4 * (chunks == 0 ? 1 : chunks));
  return quarter == 0 ? 1 : quarter;
}

}  // namespace hetopt::parallel
