// Work partitioning: fraction split between host and device (the paper's
// "DNA sequence fraction" parameter) and overlapped chunking with a halo so
// pattern matches spanning the cut are not lost.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace hetopt::parallel {

/// The host/device byte split for a given workload fraction.
struct FractionSplit {
  std::size_t host_bytes = 0;
  std::size_t device_bytes = 0;
};

/// Splits `total` items so the host receives round(total * percent / 100).
/// `host_percent` must be in [0, 100].
[[nodiscard]] FractionSplit split_by_percent(std::size_t total, double host_percent);

/// A contiguous piece of the input assigned to one worker, with `halo`
/// extra trailing bytes (capped at the input end) so a scanner can complete
/// matches that start near the chunk boundary. Matches are attributed to a
/// chunk by their *start* offset, which keeps counts exact.
struct Chunk {
  std::size_t begin = 0;       // first owned byte
  std::size_t end = 0;         // one past last owned byte
  std::size_t scan_end = 0;    // end + halo, clamped to total
};

/// Splits [0, total) into `count` chunks (fewer if total < count) with the
/// given halo. Chunks tile the range exactly: chunk[i].end == chunk[i+1].begin.
[[nodiscard]] std::vector<Chunk> make_chunks(std::size_t total, std::size_t count,
                                             std::size_t halo);

}  // namespace hetopt::parallel
