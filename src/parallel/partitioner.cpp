#include "parallel/partitioner.hpp"

#include <algorithm>
#include <cmath>

#include "parallel/thread_pool.hpp"

namespace hetopt::parallel {

FractionSplit split_by_percent(std::size_t total, double host_percent) {
  if (host_percent < 0.0 || host_percent > 100.0) {
    throw std::invalid_argument("split_by_percent: percent out of [0,100]");
  }
  FractionSplit s;
  s.host_bytes = std::min(
      total, static_cast<std::size_t>(
                 std::llround(static_cast<double>(total) * host_percent / 100.0)));
  s.device_bytes = total - s.host_bytes;
  return s;
}

std::vector<Chunk> make_chunks(std::size_t total, std::size_t count, std::size_t halo) {
  std::vector<Chunk> chunks;
  if (total == 0 || count == 0) return chunks;
  count = std::min(count, total);
  chunks.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Chunk c;
    c.begin = chunk_begin(total, count, i);
    c.end = chunk_begin(total, count, i + 1);
    c.scan_end = std::min(total, c.end + halo);
    chunks.push_back(c);
  }
  return chunks;
}

std::vector<Chunk> make_chunks_guided(std::size_t total, std::size_t workers,
                                      std::size_t min_chunk) {
  std::vector<Chunk> chunks;
  if (total == 0 || workers == 0) return chunks;
  if (min_chunk == 0) min_chunk = 1;
  std::size_t begin = 0;
  while (begin < total) {
    const std::size_t remaining = total - begin;
    std::size_t len = std::max(min_chunk, (remaining + 2 * workers - 1) / (2 * workers));
    len = std::min(len, remaining);
    Chunk c;
    c.begin = begin;
    c.end = begin + len;
    c.scan_end = c.end;
    chunks.push_back(c);
    begin += len;
  }
  return chunks;
}

}  // namespace hetopt::parallel
