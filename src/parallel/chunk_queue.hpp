// A lock-free dispenser over the chunk indices [0, size): the heart of the
// demand-driven schedules. take_front() and take_back() atomically claim
// indices from the two ends of the remaining range until they meet, so
//
//  - one pool pulling take_front() is an *atomic ticket queue* (the dynamic
//    and guided schedules): each worker claims the next unscanned chunk the
//    moment it goes idle, with one CAS per chunk and no locks;
//  - two pools pulling from opposite ends share the range *adaptively*: the
//    host drains ascending from the front, the device descending from the
//    back, and when either side exhausts its own region it transparently
//    continues into the other side's remainder — that continuation is a
//    steal, and the realized host/device split emerges at runtime.
//
// The queue dispenses indices only; whoever claims index i owns chunk i's
// scratch slot exclusively, and the pool join (future.get) publishes the
// results, so no further synchronization is needed on the claimed data.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>

namespace hetopt::parallel {

class ChunkQueue {
 public:
  /// Ready to dispense [0, size). Throws std::invalid_argument when `size`
  /// exceeds the packed-range capacity (2^32 - 1 chunks — far beyond any
  /// real chunking of a scan).
  explicit ChunkQueue(std::size_t size);

  ChunkQueue(const ChunkQueue&) = delete;
  ChunkQueue& operator=(const ChunkQueue&) = delete;

  /// Claims the lowest unclaimed index; nullopt once the range is drained.
  [[nodiscard]] std::optional<std::size_t> take_front() noexcept;
  /// Claims the highest unclaimed index; nullopt once the range is drained.
  [[nodiscard]] std::optional<std::size_t> take_back() noexcept;

  /// Indices not yet claimed (a racy snapshot under concurrent takers).
  [[nodiscard]] std::size_t remaining() const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  // The unclaimed range [lo, end) packed into one atomic word so both ends
  // move under a single CAS and can never cross.
  [[nodiscard]] static constexpr std::uint64_t pack(std::uint32_t lo,
                                                    std::uint32_t end) noexcept {
    return (static_cast<std::uint64_t>(lo) << 32) | end;
  }

  std::size_t size_;
  std::atomic<std::uint64_t> range_;
};

}  // namespace hetopt::parallel
