// A lock-free dispenser over the chunk indices [0, size): the heart of the
// demand-driven schedules. take_front() and take_back() atomically claim
// indices from the two ends of the remaining range until they meet, so
//
//  - one pool pulling take_front() is an *atomic ticket queue* (the dynamic
//    and guided schedules): each worker claims the next unscanned chunk the
//    moment it goes idle, with one CAS per chunk and no locks;
//  - two pools pulling from opposite ends share the range *adaptively*: the
//    host drains ascending from the front, the device descending from the
//    back, and when either side exhausts its own region it transparently
//    continues into the other side's remainder — that continuation is a
//    steal, and the realized host/device split emerges at runtime.
//
// The queue dispenses indices only; whoever claims index i owns chunk i's
// scratch slot exclusively, and the pool join (future.get) publishes the
// results, so no further synchronization is needed on the claimed data.
//
// Lock-free protocol (thread-safety-analysis note). Clang's -Wthread-safety
// gate (util/annotations.hpp) covers lock-*based* code; a lock-free word has
// no capability to annotate, so this class documents its invariants the way
// HETOPT_PT_GUARDED_BY would state them, and hetopt_lint's `atomic-order`
// rule enforces the explicit-memory-order discipline below:
//
//  - `range_` is the ONLY shared mutable state; both claim paths mutate it
//    through a single CAS, so `lo <= end` holds in every reachable value and
//    an index is dispensed exactly once (the CAS that moves an endpoint past
//    index i is the unique claim of i);
//  - claiming carries no payload: chunk data is immutable input and scratch
//    slot i is owned by i's claimant, so the CAS needs no release fence for
//    data — acq_rel on success is kept so a claim also orders any prior
//    writes of the *claiming* thread (steals observe a consistent boundary),
//    and failed CAS / optimistic loads are relaxed because every loaded
//    value is re-validated by the next CAS;
//  - remaining() is a racy snapshot by contract; its acquire load only
//    ensures a monotonic view, never mutual exclusion.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>

namespace hetopt::parallel {

class ChunkQueue {
 public:
  /// Ready to dispense [0, size). Throws std::invalid_argument when `size`
  /// exceeds the packed-range capacity (2^32 - 1 chunks — far beyond any
  /// real chunking of a scan).
  explicit ChunkQueue(std::size_t size);

  ChunkQueue(const ChunkQueue&) = delete;
  ChunkQueue& operator=(const ChunkQueue&) = delete;

  /// Claims the lowest unclaimed index; nullopt once the range is drained.
  [[nodiscard]] std::optional<std::size_t> take_front() noexcept;
  /// Claims the highest unclaimed index; nullopt once the range is drained.
  [[nodiscard]] std::optional<std::size_t> take_back() noexcept;

  /// Indices not yet claimed (a racy snapshot under concurrent takers).
  [[nodiscard]] std::size_t remaining() const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Poisons the queue: atomically discards every unclaimed index and
  /// returns how many were discarded. Concurrent takers racing the close
  /// either complete a valid claim just before it (the claim is honored and
  /// not counted as discarded) or observe the emptied range and get nullopt
  /// — nobody spins on an abandoned queue. Safe to call repeatedly and from
  /// any thread (later calls discard 0); a closed queue never reopens. The
  /// watchdog uses this to shut down a failed pool's segment before the
  /// coordinator requeues its remainder.
  std::size_t close() noexcept;
  /// True once close() has been called (acquire; pairs with close()'s
  /// release so the emptied range is visible alongside the flag).
  [[nodiscard]] bool closed() const noexcept;

 private:
  // The unclaimed range [lo, end) packed into one atomic word so both ends
  // move under a single CAS and can never cross.
  [[nodiscard]] static constexpr std::uint64_t pack(std::uint32_t lo,
                                                    std::uint32_t end) noexcept {
    return (static_cast<std::uint64_t>(lo) << 32) | end;
  }

  std::size_t size_;
  std::atomic<std::uint64_t> range_;
  std::atomic<bool> closed_{false};
};

}  // namespace hetopt::parallel
