// Batched map helper for candidate evaluation: runs fn(i) for i in [0, n) and
// returns the results in index order, spreading the work across a ThreadPool
// when one is provided. This is the bridge between a SearchStrategy's batch
// objective calls and the pool — enumeration chunks and GA generations score
// concurrently while staying deterministic (results are keyed by index, not
// by completion order).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace hetopt::parallel {

class ThreadPool;

/// Evaluates fn(i) for every i in [0, n). With a pool and n > 1 the
/// iterations run on the pool (fn must be thread-safe); otherwise they run
/// inline on the caller. The first exception thrown by fn is propagated.
[[nodiscard]] std::vector<double> map_indexed(ThreadPool* pool, std::size_t n,
                                              const std::function<double(std::size_t)>& fn);

}  // namespace hetopt::parallel
