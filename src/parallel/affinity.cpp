#include "parallel/affinity.hpp"

#include <stdexcept>

namespace hetopt::parallel {

std::string_view to_string(HostAffinity a) noexcept {
  switch (a) {
    case HostAffinity::kNone: return "none";
    case HostAffinity::kScatter: return "scatter";
    case HostAffinity::kCompact: return "compact";
  }
  return "?";
}

std::string_view to_string(DeviceAffinity a) noexcept {
  switch (a) {
    case DeviceAffinity::kBalanced: return "balanced";
    case DeviceAffinity::kScatter: return "scatter";
    case DeviceAffinity::kCompact: return "compact";
  }
  return "?";
}

HostAffinity host_affinity_from_string(std::string_view s) {
  if (s == "none") return HostAffinity::kNone;
  if (s == "scatter") return HostAffinity::kScatter;
  if (s == "compact") return HostAffinity::kCompact;
  throw std::invalid_argument("unknown host affinity '" + std::string(s) + "'");
}

DeviceAffinity device_affinity_from_string(std::string_view s) {
  if (s == "balanced") return DeviceAffinity::kBalanced;
  if (s == "scatter") return DeviceAffinity::kScatter;
  if (s == "compact") return DeviceAffinity::kCompact;
  throw std::invalid_argument("unknown device affinity '" + std::string(s) + "'");
}

}  // namespace hetopt::parallel
