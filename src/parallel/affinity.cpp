#include "parallel/affinity.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace hetopt::parallel {

namespace {

enum class Placement { kNone, kCompact, kScatter, kBalanced };

[[nodiscard]] Placement placement_of(HostAffinity a) noexcept {
  switch (a) {
    case HostAffinity::kNone: return Placement::kNone;
    case HostAffinity::kScatter: return Placement::kScatter;
    case HostAffinity::kCompact: return Placement::kCompact;
  }
  return Placement::kNone;
}

[[nodiscard]] Placement placement_of(DeviceAffinity a) noexcept {
  switch (a) {
    case DeviceAffinity::kBalanced: return Placement::kBalanced;
    case DeviceAffinity::kScatter: return Placement::kScatter;
    case DeviceAffinity::kCompact: return Placement::kCompact;
  }
  return Placement::kBalanced;
}

[[nodiscard]] unsigned place(Placement p, std::size_t index, std::size_t count,
                             unsigned cpus) noexcept {
  if (cpus == 0) cpus = 1;
  if (count == 0) count = 1;
  const std::size_t n = cpus;
  switch (p) {
    case Placement::kCompact:
    case Placement::kNone:
      return static_cast<unsigned>(index % n);
    case Placement::kScatter:
      // Consecutive workers land as far apart as possible; oversubscribed
      // pools round-robin so neighbouring ids stay on different CPUs
      // (KMP_AFFINITY=scatter on a flat topology).
      if (count <= n) return static_cast<unsigned>((index % count) * n / count);
      return static_cast<unsigned>(index % n);
    case Placement::kBalanced:
      // Workers spread evenly, but oversubscribed pools keep *consecutive*
      // ids together on the same CPU (KMP_AFFINITY=balanced). With
      // count <= n this coincides with scatter, as it does on real
      // single-package hardware.
      return static_cast<unsigned>((index % count) * n / count);
  }
  return 0;
}

bool pin_to(unsigned cpu) {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace

unsigned cpu_for_worker(HostAffinity policy, std::size_t worker_index,
                        std::size_t worker_count, unsigned hardware_cpus) noexcept {
  return place(placement_of(policy), worker_index, worker_count, hardware_cpus);
}

unsigned cpu_for_worker(DeviceAffinity policy, std::size_t worker_index,
                        std::size_t worker_count, unsigned hardware_cpus) noexcept {
  return place(placement_of(policy), worker_index, worker_count, hardware_cpus);
}

bool pin_current_thread(HostAffinity policy, std::size_t worker_index,
                        std::size_t worker_count) {
  if (policy == HostAffinity::kNone) return false;
  const unsigned cpus = std::max(1u, std::thread::hardware_concurrency());
  return pin_to(cpu_for_worker(policy, worker_index, worker_count, cpus));
}

bool pin_current_thread(DeviceAffinity policy, std::size_t worker_index,
                        std::size_t worker_count) {
  const unsigned cpus = std::max(1u, std::thread::hardware_concurrency());
  return pin_to(cpu_for_worker(policy, worker_index, worker_count, cpus));
}

std::string_view to_string(HostAffinity a) noexcept {
  switch (a) {
    case HostAffinity::kNone: return "none";
    case HostAffinity::kScatter: return "scatter";
    case HostAffinity::kCompact: return "compact";
  }
  return "?";
}

std::string_view to_string(DeviceAffinity a) noexcept {
  switch (a) {
    case DeviceAffinity::kBalanced: return "balanced";
    case DeviceAffinity::kScatter: return "scatter";
    case DeviceAffinity::kCompact: return "compact";
  }
  return "?";
}

HostAffinity host_affinity_from_string(std::string_view s) {
  if (s == "none") return HostAffinity::kNone;
  if (s == "scatter") return HostAffinity::kScatter;
  if (s == "compact") return HostAffinity::kCompact;
  throw std::invalid_argument("unknown host affinity '" + std::string(s) + "'");
}

DeviceAffinity device_affinity_from_string(std::string_view s) {
  if (s == "balanced") return DeviceAffinity::kBalanced;
  if (s == "scatter") return DeviceAffinity::kScatter;
  if (s == "compact") return DeviceAffinity::kCompact;
  throw std::invalid_argument("unknown device affinity '" + std::string(s) + "'");
}

}  // namespace hetopt::parallel
