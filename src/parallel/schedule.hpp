// The work-distribution vocabulary: *how* chunks reach the workers. This is
// a *tuned axis* — opt::SystemConfig carries one of these values next to the
// thread/affinity/engine knobs, so the optimizers can discover that a
// demand-driven schedule beats the paper's static split for a given workload
// (the paper names "adaptive workload-aware distribution" as future work).
//
// Kept in its own header (enum + string helpers only) so the opt layer can
// name policies without depending on the queue machinery behind them.
//
// Meaning per layer:
//   automata::ParallelMatcher (one pool scanning one text)
//     static    chunks pre-assigned to workers in contiguous groups
//               (the seed behavior)
//     dynamic   workers pull chunk indices from an atomic ticket queue
//     guided    decreasing chunk sizes (big head, fine tail) pulled from
//               the queue — the OpenMP `guided` shape
//     adaptive  same as dynamic (adaptivity across *pools* lives in the
//               executor; a single pool has nothing to steal from)
//
//   core::HeterogeneousExecutor (host pool + device pool, one input)
//     static    split by the configured fraction, each side scans its share
//               and joins (the seed behavior)
//     dynamic   one shared chunk queue, both pools pull from the front —
//               fully demand-driven, the realized split emerges at runtime
//     guided    shared queue with guided (decreasing) chunk sizes
//     adaptive  the shared pool is seeded by the configured fraction: the
//               host drains its own region from the front, the device drains
//               its region from the back, and whichever side finishes first
//               *steals* the other side's remaining chunks — the realized
//               fraction starts at the configured one and drifts to match
//               the hardware (ExecutionReport records fractions + steals)
#pragma once

#include <array>
#include <cstddef>
#include <optional>
#include <string_view>

namespace hetopt::parallel {

enum class SchedulePolicy {
  kStatic = 0,
  kDynamic = 1,
  kGuided = 2,
  kAdaptive = 3,
};

inline constexpr std::size_t kSchedulePolicyCount = 4;
inline constexpr std::array<SchedulePolicy, kSchedulePolicyCount> kAllSchedulePolicies{
    SchedulePolicy::kStatic, SchedulePolicy::kDynamic, SchedulePolicy::kGuided,
    SchedulePolicy::kAdaptive};

[[nodiscard]] constexpr std::string_view to_string(SchedulePolicy policy) noexcept {
  switch (policy) {
    case SchedulePolicy::kStatic: return "static";
    case SchedulePolicy::kDynamic: return "dynamic";
    case SchedulePolicy::kGuided: return "guided";
    case SchedulePolicy::kAdaptive: return "adaptive";
  }
  return "?";
}

/// Inverse of to_string; nullopt for unknown names.
[[nodiscard]] constexpr std::optional<SchedulePolicy> schedule_policy_from_string(
    std::string_view name) noexcept {
  for (const SchedulePolicy policy : kAllSchedulePolicies) {
    if (to_string(policy) == name) return policy;
  }
  return std::nullopt;
}

}  // namespace hetopt::parallel
