// Tabular dataset for the performance-prediction models: one row per
// executed experiment, features describing the system configuration, target
// = measured execution time in seconds.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace hetopt::ml {

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<std::string> feature_names);

  /// Appends a row; `features.size()` must equal feature_count().
  /// Rejects non-finite features/targets (failure injection guard).
  void add(std::span<const double> features, double target);

  [[nodiscard]] std::size_t size() const noexcept { return targets_.size(); }
  [[nodiscard]] bool empty() const noexcept { return targets_.empty(); }
  [[nodiscard]] std::size_t feature_count() const noexcept { return feature_names_.size(); }
  [[nodiscard]] const std::vector<std::string>& feature_names() const noexcept {
    return feature_names_;
  }

  [[nodiscard]] std::span<const double> row(std::size_t i) const;
  [[nodiscard]] double target(std::size_t i) const { return targets_.at(i); }
  [[nodiscard]] const std::vector<double>& targets() const noexcept { return targets_; }

  /// The paper's validation protocol: "half of the experiments to train and
  /// the other half to evaluate". Rows are assigned alternately after a
  /// seeded shuffle, so both halves cover the whole configuration range.
  [[nodiscard]] std::pair<Dataset, Dataset> split_half(std::uint64_t seed) const;

  /// Random split with the given training fraction in (0,1).
  [[nodiscard]] std::pair<Dataset, Dataset> split_fraction(double train_fraction,
                                                           std::uint64_t seed) const;

  /// Row subset by index list (bootstrap / subsampling support).
  [[nodiscard]] Dataset subset(std::span<const std::size_t> indices) const;

 private:
  std::vector<std::string> feature_names_;
  std::vector<double> features_;  // row-major, size() * feature_count()
  std::vector<double> targets_;
};

/// Per-feature min-max normalizer (the "Normalize Data" stage of the paper's
/// Fig. 4 pipeline). Constant features map to 0.
class Normalizer {
 public:
  /// Learns per-feature ranges; throws on an empty dataset.
  void fit(const Dataset& data);
  [[nodiscard]] bool fitted() const noexcept { return !mins_.empty(); }

  /// Returns a normalized copy of the dataset (targets unchanged).
  [[nodiscard]] Dataset transform(const Dataset& data) const;
  /// Normalizes a single query row into `out` (sizes must match fit).
  void transform_row(std::span<const double> in, std::span<double> out) const;

  [[nodiscard]] const std::vector<double>& mins() const noexcept { return mins_; }
  [[nodiscard]] const std::vector<double>& maxs() const noexcept { return maxs_; }

 private:
  std::vector<double> mins_;
  std::vector<double> maxs_;
};

}  // namespace hetopt::ml
