#include "ml/boosted_trees.hpp"

#include <numeric>
#include <stdexcept>

namespace hetopt::ml {

BoostedTreesRegressor::BoostedTreesRegressor(BoostedTreesParams params)
    : params_(params) {
  if (params_.rounds < 1) throw std::invalid_argument("BoostedTrees: rounds < 1");
  if (params_.learning_rate <= 0.0 || params_.learning_rate > 1.0) {
    throw std::invalid_argument("BoostedTrees: learning_rate out of (0,1]");
  }
  if (params_.subsample <= 0.0 || params_.subsample > 1.0) {
    throw std::invalid_argument("BoostedTrees: subsample out of (0,1]");
  }
}

void BoostedTreesRegressor::fit(const Dataset& data) {
  if (data.empty()) throw std::invalid_argument("BoostedTrees::fit: empty dataset");
  trees_.clear();

  // F_0: global mean.
  base_prediction_ =
      std::accumulate(data.targets().begin(), data.targets().end(), 0.0) /
      static_cast<double>(data.size());

  std::vector<double> current(data.size(), base_prediction_);
  std::vector<double> residuals(data.size(), 0.0);
  util::Xoshiro256 rng(params_.seed);

  std::vector<std::size_t> all(data.size());
  std::iota(all.begin(), all.end(), 0);

  const auto sample_count = static_cast<std::size_t>(
      params_.subsample * static_cast<double>(data.size()));
  const bool subsampling = sample_count < data.size() && sample_count >= 2;

  for (int round = 0; round < params_.rounds; ++round) {
    for (std::size_t i = 0; i < data.size(); ++i) {
      residuals[i] = data.target(i) - current[i];
    }

    RegressionTree tree(params_.tree);
    if (subsampling) {
      util::shuffle(all, rng);
      std::vector<std::size_t> pick(all.begin(),
                                    all.begin() + static_cast<std::ptrdiff_t>(sample_count));
      Dataset sub = data.subset(pick);
      std::vector<double> sub_res(pick.size());
      for (std::size_t k = 0; k < pick.size(); ++k) sub_res[k] = residuals[pick[k]];
      tree.fit_targets(sub, sub_res);
    } else {
      tree.fit_targets(data, residuals);
    }

    for (std::size_t i = 0; i < data.size(); ++i) {
      current[i] += params_.learning_rate * tree.predict(data.row(i));
    }
    trees_.push_back(std::move(tree));
  }
  fitted_ = true;
}

std::vector<double> BoostedTreesRegressor::feature_importance(
    std::size_t feature_count) const {
  std::vector<std::size_t> counts(feature_count, 0);
  for (const RegressionTree& tree : trees_) {
    tree.accumulate_split_counts(counts);
  }
  std::size_t total = 0;
  for (std::size_t c : counts) total += c;
  std::vector<double> importance(feature_count, 0.0);
  if (total == 0) return importance;
  for (std::size_t j = 0; j < feature_count; ++j) {
    importance[j] = static_cast<double>(counts[j]) / static_cast<double>(total);
  }
  return importance;
}

BoostedTreesRegressor BoostedTreesRegressor::from_parts(BoostedTreesParams params,
                                                        double base_prediction,
                                                        std::vector<RegressionTree> trees) {
  BoostedTreesRegressor model(params);
  model.base_prediction_ = base_prediction;
  model.trees_ = std::move(trees);
  model.fitted_ = true;
  return model;
}

double BoostedTreesRegressor::predict(std::span<const double> features) const {
  return predict_staged(features, static_cast<int>(trees_.size()));
}

double BoostedTreesRegressor::predict_staged(std::span<const double> features,
                                             int rounds) const {
  if (!fitted_) throw std::logic_error("BoostedTrees: predict before fit");
  if (rounds < 0 || rounds > static_cast<int>(trees_.size())) {
    throw std::invalid_argument("BoostedTrees: staged rounds out of range");
  }
  double acc = base_prediction_;
  for (int r = 0; r < rounds; ++r) {
    acc += params_.learning_rate * trees_[static_cast<std::size_t>(r)].predict(features);
  }
  return acc;
}

}  // namespace hetopt::ml
