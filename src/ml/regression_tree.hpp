// CART regression tree: axis-aligned binary splits minimizing the sum of
// squared errors. Used standalone and as the weak learner inside the
// boosted ensemble.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/regressor.hpp"

namespace hetopt::ml {

struct TreeParams {
  int max_depth = 6;
  std::size_t min_samples_leaf = 2;
  std::size_t min_samples_split = 4;
};

class RegressionTree final : public Regressor {
 public:
  explicit RegressionTree(TreeParams params = {});

  void fit(const Dataset& data) override;
  /// Fits against externally supplied targets (boosting residuals); `data`'s
  /// own targets are ignored.
  void fit_targets(const Dataset& data, std::span<const double> targets);

  [[nodiscard]] bool fitted() const noexcept override { return !nodes_.empty(); }
  [[nodiscard]] double predict(std::span<const double> features) const override;
  [[nodiscard]] std::string name() const override { return "RegressionTree"; }

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  /// Width of feature rows this tree was fitted/rebuilt with.
  [[nodiscard]] std::size_t feature_count() const noexcept { return feature_count_; }
  [[nodiscard]] std::size_t leaf_count() const noexcept;
  [[nodiscard]] int depth() const noexcept;

  /// Adds this tree's split counts into `counts` (size >= feature_count).
  /// Used for ensemble feature importance.
  void accumulate_split_counts(std::span<std::size_t> counts) const;

  /// Flat node record for (de)serialization.
  struct ExportedNode {
    std::int32_t feature = -1;
    double threshold = 0.0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    double value = 0.0;
    friend bool operator==(const ExportedNode&, const ExportedNode&) = default;
  };
  [[nodiscard]] std::vector<ExportedNode> export_nodes() const;
  /// Rebuilds a tree from exported nodes; validates indices.
  [[nodiscard]] static RegressionTree from_nodes(TreeParams params,
                                                 std::vector<ExportedNode> nodes,
                                                 std::size_t feature_count);

 private:
  struct Node {
    // Internal node: split on feature < threshold -> left else right.
    // Leaf: left == -1.
    std::int32_t feature = -1;
    double threshold = 0.0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    double value = 0.0;  // leaf prediction (mean of targets)
  };

  std::int32_t build(const Dataset& data, std::span<const double> targets,
                     std::vector<std::size_t>& indices, std::size_t begin, std::size_t end,
                     int depth);

  TreeParams params_;
  std::vector<Node> nodes_;
  std::size_t feature_count_ = 0;
};

}  // namespace hetopt::ml
