#include "ml/serialize.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>

namespace hetopt::ml {

namespace {

constexpr const char* kNormalizerMagic = "hetopt-normalizer-v1";
constexpr const char* kBoostedMagic = "hetopt-boosted-trees-v1";

void write_double(std::ostream& os, double v) {
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
}

[[noreturn]] void fail(const std::string& what) {
  std::string message = "ml::serialize: ";
  message += what;
  throw std::runtime_error(message);
}

template <typename T>
T read_value(std::istream& is, const char* what) {
  T v;
  if (!(is >> v)) {
    std::string message = "truncated/garbled input reading ";
    message += what;
    fail(message);
  }
  return v;
}

void expect_magic(std::istream& is, const char* magic) {
  std::string token;
  if (!(is >> token) || token != magic) {
    std::string message = "bad magic, expected ";
    message += magic;
    fail(message);
  }
}

}  // namespace

void save(std::ostream& os, const Normalizer& normalizer) {
  if (!normalizer.fitted()) fail("cannot save an unfitted normalizer");
  os << kNormalizerMagic << '\n' << normalizer.mins().size() << '\n';
  for (std::size_t j = 0; j < normalizer.mins().size(); ++j) {
    write_double(os, normalizer.mins()[j]);
    os << ' ';
    write_double(os, normalizer.maxs()[j]);
    os << '\n';
  }
}

Normalizer load_normalizer(std::istream& is) {
  expect_magic(is, kNormalizerMagic);
  const auto k = read_value<std::size_t>(is, "feature count");
  if (k == 0 || k > 1'000'000) fail("implausible normalizer feature count");
  // Rebuild through fit() on a synthetic two-row dataset carrying the ranges
  // (keeps Normalizer's invariants in one place).
  std::vector<std::string> names(k);
  for (std::size_t j = 0; j < k; ++j) {
    names[j] = std::to_string(j);
    names[j].insert(names[j].begin(), 'f');
  }
  Dataset d(names);
  std::vector<double> lo(k);
  std::vector<double> hi(k);
  for (std::size_t j = 0; j < k; ++j) {
    lo[j] = read_value<double>(is, "min");
    hi[j] = read_value<double>(is, "max");
    if (hi[j] < lo[j]) fail("normalizer max < min");
  }
  d.add(lo, 0.0);
  d.add(hi, 0.0);
  Normalizer n;
  n.fit(d);
  return n;
}

void save(std::ostream& os, const BoostedTreesRegressor& model) {
  if (!model.fitted()) fail("cannot save an unfitted model");
  const BoostedTreesParams& p = model.params();
  os << kBoostedMagic << '\n'
     << p.rounds << ' ';
  write_double(os, p.learning_rate);
  os << ' ' << p.tree.max_depth << ' ' << p.tree.min_samples_leaf << ' '
     << p.tree.min_samples_split << ' ';
  write_double(os, p.subsample);
  os << ' ' << p.seed << '\n';
  write_double(os, model.base_prediction());
  const std::size_t feature_count =
      model.trees().empty() ? 1 : model.trees().front().feature_count();
  os << '\n' << feature_count << ' ' << model.trees().size() << '\n';
  for (const RegressionTree& tree : model.trees()) {
    const auto nodes = tree.export_nodes();
    os << nodes.size() << '\n';
    for (const auto& n : nodes) {
      os << n.feature << ' ';
      write_double(os, n.threshold);
      os << ' ' << n.left << ' ' << n.right << ' ';
      write_double(os, n.value);
      os << '\n';
    }
  }
}

BoostedTreesRegressor load_boosted_trees(std::istream& is) {
  expect_magic(is, kBoostedMagic);
  BoostedTreesParams p;
  p.rounds = read_value<int>(is, "rounds");
  p.learning_rate = read_value<double>(is, "learning_rate");
  p.tree.max_depth = read_value<int>(is, "max_depth");
  p.tree.min_samples_leaf = read_value<std::size_t>(is, "min_samples_leaf");
  p.tree.min_samples_split = read_value<std::size_t>(is, "min_samples_split");
  p.subsample = read_value<double>(is, "subsample");
  p.seed = read_value<std::uint64_t>(is, "seed");
  const auto base = read_value<double>(is, "base prediction");
  const auto feature_count = read_value<std::size_t>(is, "feature count");
  const auto tree_count = read_value<std::size_t>(is, "tree count");
  if (feature_count == 0 || feature_count > 1'000'000) fail("implausible feature count");
  if (tree_count > 1'000'000) fail("implausible tree count");

  std::vector<RegressionTree> trees;
  trees.reserve(tree_count);
  for (std::size_t t = 0; t < tree_count; ++t) {
    const auto node_count = read_value<std::size_t>(is, "node count");
    if (node_count == 0 || node_count > 10'000'000) fail("implausible node count");
    std::vector<RegressionTree::ExportedNode> nodes(node_count);
    for (auto& n : nodes) {
      n.feature = read_value<std::int32_t>(is, "feature");
      n.threshold = read_value<double>(is, "threshold");
      n.left = read_value<std::int32_t>(is, "left");
      n.right = read_value<std::int32_t>(is, "right");
      n.value = read_value<double>(is, "value");
    }
    trees.push_back(RegressionTree::from_nodes(p.tree, std::move(nodes), feature_count));
  }
  return BoostedTreesRegressor::from_parts(p, base, std::move(trees));
}

}  // namespace hetopt::ml
