#include "ml/linear_regression.hpp"

#include <cmath>
#include <stdexcept>

#include "ml/linalg.hpp"

namespace hetopt::ml {

namespace {

/// Builds the (weighted) normal equations X^T W X beta = X^T W z with an
/// implicit leading intercept column and ridge term on the non-intercept
/// diagonal.
std::vector<double> weighted_least_squares(const Dataset& data,
                                           const std::vector<double>& w,
                                           const std::vector<double>& z, double lambda) {
  const std::size_t k = data.feature_count() + 1;  // + intercept
  Matrix xtx(k, k, 0.0);
  std::vector<double> xtz(k, 0.0);
  std::vector<double> xi(k, 0.0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    xi[0] = 1.0;
    const auto row = data.row(i);
    for (std::size_t j = 0; j < row.size(); ++j) xi[j + 1] = row[j];
    for (std::size_t a = 0; a < k; ++a) {
      for (std::size_t b = 0; b < k; ++b) xtx.at(a, b) += w[i] * xi[a] * xi[b];
      xtz[a] += w[i] * xi[a] * z[i];
    }
  }
  for (std::size_t a = 1; a < k; ++a) xtx.at(a, a) += lambda;
  return solve(std::move(xtx), std::move(xtz));
}

double dot_with_intercept(const std::vector<double>& coef, std::span<const double> x) {
  double acc = coef[0];
  for (std::size_t j = 0; j < x.size(); ++j) acc += coef[j + 1] * x[j];
  return acc;
}

}  // namespace

LinearRegressor::LinearRegressor(double ridge_lambda) : lambda_(ridge_lambda) {
  if (ridge_lambda < 0.0) throw std::invalid_argument("LinearRegressor: negative lambda");
}

void LinearRegressor::fit(const Dataset& data) {
  if (data.empty()) throw std::invalid_argument("LinearRegressor::fit: empty dataset");
  const std::vector<double> w(data.size(), 1.0);
  coef_ = weighted_least_squares(data, w, data.targets(), lambda_);
}

double LinearRegressor::predict(std::span<const double> features) const {
  if (!fitted()) throw std::logic_error("LinearRegressor: predict before fit");
  if (features.size() + 1 != coef_.size()) {
    throw std::invalid_argument("LinearRegressor: feature count mismatch");
  }
  return dot_with_intercept(coef_, features);
}

PoissonRegressor::PoissonRegressor(int max_iterations, double tolerance)
    : max_iter_(max_iterations), tol_(tolerance) {
  if (max_iterations < 1) throw std::invalid_argument("PoissonRegressor: max_iterations < 1");
}

void PoissonRegressor::fit(const Dataset& data) {
  if (data.empty()) throw std::invalid_argument("PoissonRegressor::fit: empty dataset");
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data.target(i) <= 0.0) {
      throw std::invalid_argument("PoissonRegressor::fit: targets must be positive");
    }
  }
  const std::size_t k = data.feature_count() + 1;
  // Start from the intercept-only model: log(mean target).
  double mean_y = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) mean_y += data.target(i);
  mean_y /= static_cast<double>(data.size());
  std::vector<double> beta(k, 0.0);
  beta[0] = std::log(mean_y);

  std::vector<double> w(data.size(), 0.0);
  std::vector<double> z(data.size(), 0.0);
  for (int iter = 0; iter < max_iter_; ++iter) {
    for (std::size_t i = 0; i < data.size(); ++i) {
      const double eta = dot_with_intercept(beta, data.row(i));
      const double mu = std::exp(std::min(eta, 50.0));  // guard overflow
      w[i] = mu;
      z[i] = eta + (data.target(i) - mu) / mu;
    }
    std::vector<double> next = weighted_least_squares(data, w, z, 1e-9);
    double delta = 0.0;
    for (std::size_t j = 0; j < k; ++j) delta = std::max(delta, std::abs(next[j] - beta[j]));
    beta = std::move(next);
    if (delta < tol_) break;
  }
  coef_ = std::move(beta);
}

double PoissonRegressor::predict(std::span<const double> features) const {
  if (!fitted()) throw std::logic_error("PoissonRegressor: predict before fit");
  if (features.size() + 1 != coef_.size()) {
    throw std::invalid_argument("PoissonRegressor: feature count mismatch");
  }
  return std::exp(std::min(dot_with_intercept(coef_, features), 50.0));
}

}  // namespace hetopt::ml
