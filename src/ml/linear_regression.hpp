// Ordinary least squares with optional L2 regularization, and Poisson
// regression (log-link GLM fitted by IRLS). Both were "considered" by the
// paper before it settled on boosted trees; we keep them as comparison
// baselines (bench/ablation_models).
#pragma once

#include <vector>

#include "ml/dataset.hpp"
#include "ml/regressor.hpp"

namespace hetopt::ml {

class LinearRegressor final : public Regressor {
 public:
  /// `ridge_lambda` >= 0 adds lambda*I to the normal equations (also rescues
  /// collinear feature sets from singularity).
  explicit LinearRegressor(double ridge_lambda = 1e-8);

  void fit(const Dataset& data) override;
  [[nodiscard]] bool fitted() const noexcept override { return !coef_.empty(); }
  [[nodiscard]] double predict(std::span<const double> features) const override;
  [[nodiscard]] std::string name() const override { return "LinearRegression"; }

  /// Coefficients: [intercept, w_0, ..., w_{k-1}].
  [[nodiscard]] const std::vector<double>& coefficients() const noexcept { return coef_; }

 private:
  double lambda_;
  std::vector<double> coef_;
};

class PoissonRegressor final : public Regressor {
 public:
  /// Targets must be strictly positive (execution times are).
  explicit PoissonRegressor(int max_iterations = 50, double tolerance = 1e-8);

  void fit(const Dataset& data) override;
  [[nodiscard]] bool fitted() const noexcept override { return !coef_.empty(); }
  [[nodiscard]] double predict(std::span<const double> features) const override;
  [[nodiscard]] std::string name() const override { return "PoissonRegression"; }

 private:
  int max_iter_;
  double tol_;
  std::vector<double> coef_;  // [intercept, w...] in log space
};

}  // namespace hetopt::ml
