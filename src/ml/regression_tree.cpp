#include "ml/regression_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace hetopt::ml {

RegressionTree::RegressionTree(TreeParams params) : params_(params) {
  if (params_.max_depth < 0) throw std::invalid_argument("RegressionTree: max_depth < 0");
  if (params_.min_samples_leaf < 1) {
    throw std::invalid_argument("RegressionTree: min_samples_leaf < 1");
  }
}

void RegressionTree::fit(const Dataset& data) { fit_targets(data, data.targets()); }

void RegressionTree::fit_targets(const Dataset& data, std::span<const double> targets) {
  if (data.empty()) throw std::invalid_argument("RegressionTree::fit: empty dataset");
  if (targets.size() != data.size()) {
    throw std::invalid_argument("RegressionTree::fit: target size mismatch");
  }
  nodes_.clear();
  feature_count_ = data.feature_count();
  std::vector<std::size_t> indices(data.size());
  std::iota(indices.begin(), indices.end(), 0);
  build(data, targets, indices, 0, data.size(), 0);
}

std::int32_t RegressionTree::build(const Dataset& data, std::span<const double> targets,
                                   std::vector<std::size_t>& indices, std::size_t begin,
                                   std::size_t end, int depth) {
  const std::size_t n = end - begin;
  double sum = 0.0;
  for (std::size_t i = begin; i < end; ++i) sum += targets[indices[i]];
  const double node_mean = sum / static_cast<double>(n);

  const auto node_id = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[node_id].value = node_mean;

  if (depth >= params_.max_depth || n < params_.min_samples_split ||
      n < 2 * params_.min_samples_leaf) {
    return node_id;
  }

  // Best split over all features: minimize total SSE of the two children.
  // Scanning sorted values with prefix sums gives each candidate in O(1).
  double best_gain = 0.0;
  std::int32_t best_feature = -1;
  double best_threshold = 0.0;

  double node_sse = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    const double d = targets[indices[i]] - node_mean;
    node_sse += d * d;
  }
  if (node_sse <= 1e-24) return node_id;  // pure node

  std::vector<std::size_t> sorted(indices.begin() + static_cast<std::ptrdiff_t>(begin),
                                  indices.begin() + static_cast<std::ptrdiff_t>(end));
  for (std::size_t f = 0; f < data.feature_count(); ++f) {
    std::sort(sorted.begin(), sorted.end(), [&](std::size_t a, std::size_t b) {
      return data.row(a)[f] < data.row(b)[f];
    });
    double left_sum = 0.0;
    double left_sq = 0.0;
    double total_sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double y = targets[sorted[i]];
      total_sq += y * y;
    }
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const double y = targets[sorted[i]];
      left_sum += y;
      left_sq += y * y;
      const double left_val = data.row(sorted[i])[f];
      const double right_val = data.row(sorted[i + 1])[f];
      if (left_val == right_val) continue;  // cannot split between equal values
      const std::size_t left_n = i + 1;
      const std::size_t right_n = n - left_n;
      if (left_n < params_.min_samples_leaf || right_n < params_.min_samples_leaf) continue;
      const double right_sum = sum - left_sum;
      const double right_sq = total_sq - left_sq;
      // SSE = sum(y^2) - (sum y)^2 / n for each side.
      const double sse_left = left_sq - left_sum * left_sum / static_cast<double>(left_n);
      const double sse_right =
          right_sq - right_sum * right_sum / static_cast<double>(right_n);
      const double gain = node_sse - (sse_left + sse_right);
      if (gain > best_gain + 1e-15) {
        best_gain = gain;
        best_feature = static_cast<std::int32_t>(f);
        best_threshold = 0.5 * (left_val + right_val);
      }
    }
  }

  if (best_feature < 0) return node_id;

  // Partition indices[begin,end) by the chosen split (stable to keep the
  // construction deterministic).
  std::vector<std::size_t> left_part;
  std::vector<std::size_t> right_part;
  left_part.reserve(n);
  right_part.reserve(n);
  for (std::size_t i = begin; i < end; ++i) {
    const std::size_t idx = indices[i];
    (data.row(idx)[static_cast<std::size_t>(best_feature)] < best_threshold ? left_part
                                                                            : right_part)
        .push_back(idx);
  }
  if (left_part.empty() || right_part.empty()) return node_id;  // numeric edge case
  std::copy(left_part.begin(), left_part.end(),
            indices.begin() + static_cast<std::ptrdiff_t>(begin));
  std::copy(right_part.begin(), right_part.end(),
            indices.begin() + static_cast<std::ptrdiff_t>(begin + left_part.size()));

  const std::size_t mid = begin + left_part.size();
  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  const std::int32_t left_id = build(data, targets, indices, begin, mid, depth + 1);
  nodes_[node_id].left = left_id;
  const std::int32_t right_id = build(data, targets, indices, mid, end, depth + 1);
  nodes_[node_id].right = right_id;
  return node_id;
}

double RegressionTree::predict(std::span<const double> features) const {
  if (!fitted()) throw std::logic_error("RegressionTree: predict before fit");
  if (features.size() != feature_count_) {
    throw std::invalid_argument("RegressionTree: feature count mismatch");
  }
  std::int32_t node = 0;
  while (nodes_[node].left >= 0) {
    node = features[static_cast<std::size_t>(nodes_[node].feature)] < nodes_[node].threshold
               ? nodes_[node].left
               : nodes_[node].right;
  }
  return nodes_[node].value;
}

std::size_t RegressionTree::leaf_count() const noexcept {
  std::size_t leaves = 0;
  for (const Node& n : nodes_) leaves += (n.left < 0) ? 1U : 0U;
  return leaves;
}

void RegressionTree::accumulate_split_counts(std::span<std::size_t> counts) const {
  for (const Node& n : nodes_) {
    if (n.left >= 0) {
      const auto f = static_cast<std::size_t>(n.feature);
      if (f < counts.size()) ++counts[f];
    }
  }
}

std::vector<RegressionTree::ExportedNode> RegressionTree::export_nodes() const {
  std::vector<ExportedNode> out;
  out.reserve(nodes_.size());
  for (const Node& n : nodes_) {
    out.push_back(ExportedNode{n.feature, n.threshold, n.left, n.right, n.value});
  }
  return out;
}

RegressionTree RegressionTree::from_nodes(TreeParams params,
                                          std::vector<ExportedNode> nodes,
                                          std::size_t feature_count) {
  if (nodes.empty()) throw std::invalid_argument("RegressionTree::from_nodes: no nodes");
  RegressionTree tree(params);
  tree.feature_count_ = feature_count;
  tree.nodes_.reserve(nodes.size());
  const auto n = static_cast<std::int32_t>(nodes.size());
  for (const ExportedNode& e : nodes) {
    const bool is_leaf = e.left < 0;
    if (is_leaf != (e.right < 0)) {
      throw std::invalid_argument("RegressionTree::from_nodes: half-leaf node");
    }
    if (!is_leaf) {
      if (e.left >= n || e.right >= n) {
        throw std::invalid_argument("RegressionTree::from_nodes: child out of range");
      }
      if (e.feature < 0 || static_cast<std::size_t>(e.feature) >= feature_count) {
        throw std::invalid_argument("RegressionTree::from_nodes: feature out of range");
      }
    }
    tree.nodes_.push_back(Node{e.feature, e.threshold, e.left, e.right, e.value});
  }
  return tree;
}

int RegressionTree::depth() const noexcept {
  if (nodes_.empty()) return 0;
  // Iterative depth computation over the implicit tree structure.
  std::vector<std::pair<std::int32_t, int>> stack{{0, 1}};
  int depth = 0;
  while (!stack.empty()) {
    const auto [node, d] = stack.back();
    stack.pop_back();
    depth = std::max(depth, d);
    if (nodes_[node].left >= 0) {
      stack.emplace_back(nodes_[node].left, d + 1);
      stack.emplace_back(nodes_[node].right, d + 1);
    }
  }
  return depth;
}

}  // namespace hetopt::ml
