#include "ml/linalg.hpp"

#include <cmath>
#include <stdexcept>

namespace hetopt::ml {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return data_[r * cols_ + c];
}

std::vector<double> solve(Matrix a, std::vector<double> b) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n) throw std::invalid_argument("solve: shape mismatch");

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a.at(r, col)) > std::abs(a.at(pivot, col))) pivot = r;
    }
    if (std::abs(a.at(pivot, col)) < 1e-12) {
      throw std::runtime_error("solve: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a.at(pivot, c), a.at(col, c));
      std::swap(b[pivot], b[col]);
    }
    // Eliminate below.
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a.at(r, col) / a.at(col, col);
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a.at(r, c) -= factor * a.at(col, c);
      b[r] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t c = i + 1; c < n; ++c) acc -= a.at(i, c) * x[c];
    x[i] = acc / a.at(i, i);
  }
  return x;
}

}  // namespace hetopt::ml
