// Prediction-accuracy metrics exactly as the paper defines them:
//   absolute error = |T_measured - T_predicted|                     (Eq. 5)
//   percent  error = 100 * absolute_error / T_measured              (Eq. 6)
#pragma once

#include <span>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/regressor.hpp"

namespace hetopt::ml {

struct ErrorSummary {
  double mean_absolute = 0.0;   // the paper's "absolute [s]"
  double mean_percent = 0.0;    // the paper's "percent [%]"
  double rmse = 0.0;
  double max_absolute = 0.0;
  std::size_t count = 0;
};

[[nodiscard]] double absolute_error(double measured, double predicted) noexcept;
/// Percent error; measured must be nonzero (callers guarantee positive times).
[[nodiscard]] double percent_error(double measured, double predicted);

/// Pairwise summary; spans must be equal-length and non-empty.
[[nodiscard]] ErrorSummary summarize_errors(std::span<const double> measured,
                                            std::span<const double> predicted);

/// Evaluates a fitted regressor on a dataset; returns per-row absolute
/// errors via `abs_errors_out` when non-null.
[[nodiscard]] ErrorSummary evaluate(const Regressor& model, const Dataset& eval,
                                    std::vector<double>* abs_errors_out = nullptr);

}  // namespace hetopt::ml
