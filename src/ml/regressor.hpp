// Common interface of every performance-prediction model (the paper's
// Fig. 4 "Train Model" / "Predictive Model" boxes).
#pragma once

#include <memory>
#include <span>
#include <string>

namespace hetopt::ml {

class Dataset;

class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Fits the model; throws std::invalid_argument on empty/degenerate data.
  virtual void fit(const Dataset& data) = 0;
  [[nodiscard]] virtual bool fitted() const noexcept = 0;

  /// Predicts the target for one feature row. Requires fitted().
  [[nodiscard]] virtual double predict(std::span<const double> features) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace hetopt::ml
