// Small dense linear algebra: just enough to fit linear and Poisson
// regression by (weighted) normal equations.
#pragma once

#include <cstddef>
#include <vector>

namespace hetopt::ml {

/// Row-major dense matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b by Gaussian elimination with partial pivoting.
/// Throws std::runtime_error when A is (numerically) singular.
[[nodiscard]] std::vector<double> solve(Matrix a, std::vector<double> b);

}  // namespace hetopt::ml
