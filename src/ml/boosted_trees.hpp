// Boosted Decision Tree Regression — the paper's chosen evaluator.
// Least-squares gradient boosting (Friedman 2001): each round fits a small
// CART tree to the current residuals and adds it with shrinkage; optional
// row subsampling gives stochastic gradient boosting.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/regression_tree.hpp"
#include "ml/regressor.hpp"

namespace hetopt::ml {

struct BoostedTreesParams {
  int rounds = 200;
  double learning_rate = 0.1;
  TreeParams tree{/*max_depth=*/5, /*min_samples_leaf=*/3, /*min_samples_split=*/6};
  /// Fraction of rows sampled (without replacement) per round; 1.0 = all.
  double subsample = 1.0;
  std::uint64_t seed = 0xB005ULL;
};

class BoostedTreesRegressor final : public Regressor {
 public:
  explicit BoostedTreesRegressor(BoostedTreesParams params = {});

  void fit(const Dataset& data) override;
  [[nodiscard]] bool fitted() const noexcept override { return fitted_; }
  [[nodiscard]] double predict(std::span<const double> features) const override;
  [[nodiscard]] std::string name() const override { return "BoostedDecisionTreeRegression"; }

  /// Prediction using only the first `rounds` trees (staged prediction, used
  /// to property-test that training error is non-increasing in rounds).
  [[nodiscard]] double predict_staged(std::span<const double> features, int rounds) const;

  [[nodiscard]] int trained_rounds() const noexcept { return static_cast<int>(trees_.size()); }
  [[nodiscard]] const BoostedTreesParams& params() const noexcept { return params_; }

  /// Split-frequency feature importance over the whole ensemble, normalized
  /// to sum to 1 (all-zero if the ensemble never split).
  [[nodiscard]] std::vector<double> feature_importance(std::size_t feature_count) const;

  // --- (de)serialization support (ml/serialize.hpp) -------------------------
  [[nodiscard]] double base_prediction() const noexcept { return base_prediction_; }
  [[nodiscard]] const std::vector<RegressionTree>& trees() const noexcept { return trees_; }
  /// Rebuilds a fitted ensemble from its parts.
  [[nodiscard]] static BoostedTreesRegressor from_parts(BoostedTreesParams params,
                                                        double base_prediction,
                                                        std::vector<RegressionTree> trees);

 private:
  BoostedTreesParams params_;
  double base_prediction_ = 0.0;
  std::vector<RegressionTree> trees_;
  bool fitted_ = false;
};

}  // namespace hetopt::ml
