#include "ml/metrics.hpp"

#include <cmath>
#include <stdexcept>

namespace hetopt::ml {

double absolute_error(double measured, double predicted) noexcept {
  return std::abs(measured - predicted);
}

double percent_error(double measured, double predicted) {
  if (measured == 0.0) throw std::invalid_argument("percent_error: measured == 0");
  return 100.0 * absolute_error(measured, predicted) / std::abs(measured);
}

ErrorSummary summarize_errors(std::span<const double> measured,
                              std::span<const double> predicted) {
  if (measured.size() != predicted.size()) {
    throw std::invalid_argument("summarize_errors: size mismatch");
  }
  if (measured.empty()) throw std::invalid_argument("summarize_errors: empty input");
  ErrorSummary s;
  s.count = measured.size();
  double sq = 0.0;
  for (std::size_t i = 0; i < measured.size(); ++i) {
    const double abs_err = absolute_error(measured[i], predicted[i]);
    s.mean_absolute += abs_err;
    s.mean_percent += percent_error(measured[i], predicted[i]);
    s.max_absolute = std::max(s.max_absolute, abs_err);
    sq += abs_err * abs_err;
  }
  const auto n = static_cast<double>(s.count);
  s.mean_absolute /= n;
  s.mean_percent /= n;
  s.rmse = std::sqrt(sq / n);
  return s;
}

ErrorSummary evaluate(const Regressor& model, const Dataset& eval,
                      std::vector<double>* abs_errors_out) {
  if (eval.empty()) throw std::invalid_argument("evaluate: empty dataset");
  std::vector<double> measured(eval.size());
  std::vector<double> predicted(eval.size());
  for (std::size_t i = 0; i < eval.size(); ++i) {
    measured[i] = eval.target(i);
    predicted[i] = model.predict(eval.row(i));
  }
  if (abs_errors_out != nullptr) {
    abs_errors_out->resize(eval.size());
    for (std::size_t i = 0; i < eval.size(); ++i) {
      (*abs_errors_out)[i] = absolute_error(measured[i], predicted[i]);
    }
  }
  return summarize_errors(measured, predicted);
}

}  // namespace hetopt::ml
