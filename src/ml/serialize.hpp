// Text (de)serialization for trained models, so a predictor trained once on
// the 7200-experiment sweep can be shipped and reused without re-measuring —
// the deployment mode the paper's Table II attributes to the ML methods
// ("once the model is trained one can easily increase the number of
// iterations", §IV-C).
//
// Format: line-oriented, versioned, locale-independent (numbers are printed
// with max_digits10 round-trip precision).
#pragma once

#include <iosfwd>

#include "ml/boosted_trees.hpp"
#include "ml/dataset.hpp"

namespace hetopt::ml {

/// Writes/reads a normalizer. Throws std::runtime_error on malformed input.
void save(std::ostream& os, const Normalizer& normalizer);
[[nodiscard]] Normalizer load_normalizer(std::istream& is);

/// Writes/reads a boosted ensemble (params, base prediction, every tree).
void save(std::ostream& os, const BoostedTreesRegressor& model);
[[nodiscard]] BoostedTreesRegressor load_boosted_trees(std::istream& is);

}  // namespace hetopt::ml
