#include "ml/dataset.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace hetopt::ml {

Dataset::Dataset(std::vector<std::string> feature_names)
    : feature_names_(std::move(feature_names)) {
  if (feature_names_.empty()) {
    throw std::invalid_argument("Dataset: at least one feature required");
  }
}

void Dataset::add(std::span<const double> features, double target) {
  if (features.size() != feature_count()) {
    throw std::invalid_argument("Dataset::add: expected " + std::to_string(feature_count()) +
                                " features, got " + std::to_string(features.size()));
  }
  for (double f : features) {
    if (!std::isfinite(f)) throw std::invalid_argument("Dataset::add: non-finite feature");
  }
  if (!std::isfinite(target)) throw std::invalid_argument("Dataset::add: non-finite target");
  features_.insert(features_.end(), features.begin(), features.end());
  targets_.push_back(target);
}

std::span<const double> Dataset::row(std::size_t i) const {
  if (i >= size()) throw std::out_of_range("Dataset::row");
  return std::span<const double>(features_).subspan(i * feature_count(), feature_count());
}

std::pair<Dataset, Dataset> Dataset::split_half(std::uint64_t seed) const {
  return split_fraction(0.5, seed);
}

std::pair<Dataset, Dataset> Dataset::split_fraction(double train_fraction,
                                                    std::uint64_t seed) const {
  if (train_fraction <= 0.0 || train_fraction >= 1.0) {
    throw std::invalid_argument("split_fraction: fraction must be in (0,1)");
  }
  if (size() < 2) throw std::invalid_argument("split_fraction: need at least two rows");
  std::vector<std::size_t> order(size());
  std::iota(order.begin(), order.end(), 0);
  util::Xoshiro256 rng(seed);
  util::shuffle(order, rng);

  const auto train_count = static_cast<std::size_t>(
      std::llround(train_fraction * static_cast<double>(size())));
  const std::size_t clamped = std::min(std::max<std::size_t>(1, train_count), size() - 1);

  Dataset train(feature_names_);
  Dataset eval(feature_names_);
  for (std::size_t k = 0; k < order.size(); ++k) {
    (k < clamped ? train : eval).add(row(order[k]), target(order[k]));
  }
  return {std::move(train), std::move(eval)};
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out(feature_names_);
  for (std::size_t i : indices) out.add(row(i), target(i));
  return out;
}

void Normalizer::fit(const Dataset& data) {
  if (data.empty()) throw std::invalid_argument("Normalizer::fit: empty dataset");
  const std::size_t k = data.feature_count();
  mins_.assign(k, 0.0);
  maxs_.assign(k, 0.0);
  for (std::size_t j = 0; j < k; ++j) {
    mins_[j] = maxs_[j] = data.row(0)[j];
  }
  for (std::size_t i = 1; i < data.size(); ++i) {
    const auto r = data.row(i);
    for (std::size_t j = 0; j < k; ++j) {
      mins_[j] = std::min(mins_[j], r[j]);
      maxs_[j] = std::max(maxs_[j], r[j]);
    }
  }
}

Dataset Normalizer::transform(const Dataset& data) const {
  if (!fitted()) throw std::logic_error("Normalizer: transform before fit");
  Dataset out(data.feature_names());
  std::vector<double> buf(data.feature_count());
  for (std::size_t i = 0; i < data.size(); ++i) {
    transform_row(data.row(i), buf);
    out.add(buf, data.target(i));
  }
  return out;
}

void Normalizer::transform_row(std::span<const double> in, std::span<double> out) const {
  if (!fitted()) throw std::logic_error("Normalizer: transform before fit");
  if (in.size() != mins_.size() || out.size() != mins_.size()) {
    throw std::invalid_argument("Normalizer: row size mismatch");
  }
  for (std::size_t j = 0; j < in.size(); ++j) {
    const double range = maxs_[j] - mins_[j];
    out[j] = range > 0.0 ? (in[j] - mins_[j]) / range : 0.0;
  }
}

}  // namespace hetopt::ml
