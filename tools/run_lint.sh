#!/usr/bin/env bash
# Static-analysis gate (docs/ARCHITECTURE.md: Analysis gates). Run from
# anywhere; builds into <repo>/build like run_tier1.sh.
#
#   tools/run_lint.sh [extra cmake args...]
#
# Always runs:
#   1. hetopt_lint over src/ — layer DAG, determinism bans, explicit
#      memory orders, kernel-throw, pragma-once (tools/lint/lint.hpp).
# Runs when the toolchain is available (CI installs it; locally these
# steps are skipped with a note if clang/clang-tidy are missing):
#   2. clang build of the library with -Wthread-safety -Werror — the
#      annotations in util/annotations.hpp become a static race detector.
#   3. clang-tidy over src/ with the repo .clang-tidy profile.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
failed=0

# --- 1. hetopt_lint -------------------------------------------------------
cmake -B "${repo}/build" -S "${repo}" "$@"
cmake --build "${repo}/build" --target hetopt_lint -j
if "${repo}/build/hetopt_lint" "${repo}/src"; then
  echo "run_lint: hetopt_lint OK"
else
  failed=1
fi

# --- 2. clang thread-safety analysis --------------------------------------
if command -v clang++ >/dev/null 2>&1; then
  cmake -B "${repo}/build-tsa" -S "${repo}" \
    -DCMAKE_CXX_COMPILER=clang++ -DHETOPT_WERROR=ON
  if cmake --build "${repo}/build-tsa" --target hetopt -j; then
    echo "run_lint: clang -Wthread-safety OK"
  else
    echo "run_lint: clang -Wthread-safety FAILED" >&2
    failed=1
  fi
else
  echo "run_lint: clang++ not found — skipping thread-safety analysis" >&2
fi

# --- 3. clang-tidy --------------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  tidy_build="${repo}/build-tsa"
  [ -d "${tidy_build}" ] || tidy_build="${repo}/build"
  cmake -B "${tidy_build}" -S "${repo}" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  mapfile -t sources < <(find "${repo}/src" -name '*.cpp' | sort)
  if clang-tidy -p "${tidy_build}" --quiet "${sources[@]}"; then
    echo "run_lint: clang-tidy OK"
  else
    echo "run_lint: clang-tidy FAILED" >&2
    failed=1
  fi
else
  echo "run_lint: clang-tidy not found — skipping" >&2
fi

exit "${failed}"
