// Quick calibration probe (not installed; developer tool): prints the key
// quantities DESIGN.md §5 promises, so model changes can be sanity-checked.
#include <cstdio>

#include "core/methods.hpp"
#include "opt/enumeration.hpp"
#include "sim/machine.hpp"

int main() {
  using namespace hetopt;
  const sim::Machine m = sim::emil_machine();
  const auto HS = parallel::HostAffinity::kScatter;
  const auto DB = parallel::DeviceAffinity::kBalanced;

  std::printf("host  3170MB:  2t=%.2fs 48t=%.2fs\n", m.host_time_model(3170, 2, HS),
              m.host_time_model(3170, 48, HS));
  std::printf("device 3170MB: 2t=%.2fs 240t=%.2fs\n", m.device_time_model(3170, 2, DB),
              m.device_time_model(3170, 240, DB));

  const opt::ConfigSpace space = opt::ConfigSpace::paper();
  std::printf("space size = %zu\n", space.size());

  for (const char* name : {"human", "mouse", "cat", "dog"}) {
    const double mb = name[0] == 'h' ? 3170.0 : name[0] == 'm' ? 2770.0
                                  : name[0] == 'c' ? 2430.0 : 2380.0;
    const core::Workload w(name, mb);
    const auto em = core::run_em(space, m, w);
    const auto host = core::host_only_baseline(space, m, w);
    const auto dev = core::device_only_baseline(space, m, w);
    std::printf("%-6s EM=%.3fs (%s)  host_only=%.3fs dev_only=%.3fs  speedup %.2f / %.2f\n",
                name, em.measured_time, opt::to_string(em.config).c_str(),
                host.measured_time, dev.measured_time,
                host.measured_time / em.measured_time,
                dev.measured_time / em.measured_time);
  }

  // Fig. 2 shapes.
  for (const auto& [mb, ht] : std::initializer_list<std::pair<double, int>>{
           {190, 48}, {3250, 48}, {3250, 4}}) {
    std::printf("fig2 size=%4.0fMB host_threads=%d:", mb, ht);
    double best = 1e30;
    int best_r = -1;
    for (int r = 0; r <= 100; r += 10) {
      const double t = m.combined_time_model(mb, r, ht, HS, 240, DB);
      if (t < best) { best = t; best_r = r; }
      std::printf(" %d:%.3f", r, t);
    }
    std::printf("  -> best host%%=%d\n", best_r);
  }
  return 0;
}
