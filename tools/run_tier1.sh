#!/usr/bin/env bash
# Tier-1 verify (ROADMAP.md), with warnings promoted to errors on the
# library target. Run from anywhere; builds into <repo>/build.
#
#   tools/run_tier1.sh [extra cmake args...]
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

cmake -B "${repo}/build" -S "${repo}" -DHETOPT_WERROR=ON "$@"
cmake --build "${repo}/build" -j
cd "${repo}/build"
ctest --output-on-failure -j
