#!/usr/bin/env bash
# Unified benchmark entry point: builds the bench targets and produces a
# machine-readable BENCH_<suite>.json via bench/bench_main.cpp; --full also
# runs every fig*/tab*/ablation* paper harness and captures its text output.
#
#   tools/run_bench.sh --smoke             quick real-workload bench (CI)
#   tools/run_bench.sh --full              everything, paper-sized sweeps
#   tools/run_bench.sh --smoke --out-dir=DIR --genome=cat -- [bench_main args]
#
# Outputs land in --out-dir (default <repo>/bench_out): BENCH_<suite>.json
# plus, with --full, one .txt per paper harness. The JSON is validated with
# python3 when available.
#
# Every suite runs the scan_kernel ladder; bench_main exits non-zero (failing
# CI, via set -e) when the fused compiled kernel is not at least 1.5x the
# naive scanner on the input, or when any kernel loses match parity.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
suite="smoke"
out_dir="${repo}/bench_out"
genome="human"
extra=()

while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) suite="smoke" ;;
    --full) suite="full" ;;
    --out-dir=*) out_dir="${1#*=}" ;;
    --genome=*) genome="${1#*=}" ;;
    --) shift; extra+=("$@"); break ;;
    *) echo "run_bench.sh: unknown argument '$1'" >&2; exit 2 ;;
  esac
  shift
done

mkdir -p "${out_dir}"

cmake -B "${repo}/build" -S "${repo}" >/dev/null
cmake --build "${repo}/build" --target bench_main -j

json_out="${out_dir}/BENCH_${suite}.json"
"${repo}/build/bench_main" "--suite=${suite}" "--genome=${genome}" \
  "--out=${json_out}" "${extra[@]+"${extra[@]}"}"

if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool "${json_out}" >/dev/null
  echo "validated ${json_out}"
  python3 - "${json_out}" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
if doc.get("schema") != "hetopt-bench-v7":
    sys.exit("unexpected schema: %r (want hetopt-bench-v7)" % doc.get("schema"))
# provenance is required since hetopt-bench-v6: the artifact must say what
# silicon it ran on and which ISA tier the SIMD engines actually used.
prov = doc["provenance"]
for k in ("cpu_model", "isa_detected", "isa_active", "forced_isa"):
    if k not in prov:
        sys.exit("provenance: missing %s" % k)
if "scalar" not in prov["isa_detected"]:
    sys.exit("provenance: isa_detected must always carry 'scalar'")
if prov["isa_active"] not in prov["isa_detected"]:
    sys.exit("provenance: active ISA %r not among detected %r" % (
        prov["isa_active"], prov["isa_detected"]))
print("provenance: %s, active ISA %s%s" % (
    prov["cpu_model"], prov["isa_active"],
    " (forced)" if prov["forced_isa"] else ""))
kernel = doc.get("scan_kernel", {})
if kernel:
    print("scan_kernel: fused %.2fx naive (guard %.1fx, %s)" % (
        kernel["speedup_fused_vs_naive"], kernel["guard_min_speedup"],
        "ok" if kernel["guard_ok"] else "FAILED"))
# simd_matrix is required since hetopt-bench-v6: every row must keep match
# parity (bench_main already gates on it; re-check the artifact), and the
# AVX2 throughput expectation is summarized as a warning.
simd = doc["simd_matrix"]
if not simd["rows"]:
    sys.exit("simd_matrix: no rows")
for row in simd["rows"]:
    for k in ("family", "isa", "engine", "mb_s", "matches", "match_parity",
              "speedup_vs_scalar_engine"):
        if k not in row:
            sys.exit("simd_matrix: missing %s" % k)
    if not row["match_parity"]:
        sys.exit("simd_matrix: parity lost at %s/%s" % (row["family"], row["isa"]))
if not simd["parity_ok"]:
    sys.exit("simd_matrix: parity_ok is false")
rates = ", ".join("%s/%s %.0f MB/s (%.2fx)" % (
    r["family"], r["isa"], r["mb_s"], r["speedup_vs_scalar_engine"])
    for r in simd["rows"] if r["isa"] != "baseline")
warn = "" if simd["avx2_ge_2x_scalar"] else " | WARNING: avx2 below 2x scalar bitap"
print("simd_matrix: %s%s" % (rates, warn))
for entry in doc.get("engine_matrix", []):
    best = {}
    for row in entry.get("throughput", []):
        e = row["engine"]
        if row["mb_s"] > best.get(e, (0.0,))[0]:
            best[e] = (row["mb_s"], row["chunks"])
    ranked = sorted(best.items(), key=lambda kv: -kv[1][0])
    rates = ", ".join("%s %.0f MB/s" % (e, v[0]) for e, v in ranked)
    tuned = ", ".join("%s->%s" % (t["method"], t["engine"])
                      for t in entry.get("tuned", []))
    print("engine_matrix[%s]: %s | tuned: %s" % (entry["motif_set"], rates, tuned))
sched = doc.get("schedule_matrix", {})
if sched:
    best = {}
    for row in sched.get("throughput", []):
        s = row["schedule"]
        best[s] = max(best.get(s, 0.0), row["mb_s"])
    rates = ", ".join("%s %.0f MB/s" % (s, mb) for s, mb in
                      sorted(best.items(), key=lambda kv: -kv[1]))
    skew = sched.get("skew", {})
    flags = ", ".join("%s=%s" % (k.split("_")[0], skew.get(k))
                      for k in ("dynamic_ge_static", "guided_ge_static",
                                "adaptive_ge_static"))
    tuned = ", ".join("%s->%s" % (t["method"], t["schedule"])
                      for t in sched.get("tuned", []))
    print("schedule_matrix: %s | skew@%s%%: %s | tuned: %s" % (
        rates, skew.get("host_percent"), flags, tuned))
# device_matrix is required under hetopt-bench-v4: every profile row must
# carry one configured/realized share per pool and keep match parity.
fleet = doc["device_matrix"]
profile = fleet["profile"]
if [row["device_count"] for row in profile] != [1, 2, 3, 4]:
    sys.exit("device_matrix: expected profile rows for 1..4 devices")
for row in profile:
    pools = row["pool_count"]
    if pools != row["device_count"] + 1:
        sys.exit("device_matrix: pool_count %s != device_count+1" % pools)
    for k in ("configured_percents", "realized_percents", "pool_steals"):
        if len(row[k]) != pools:
            sys.exit("device_matrix: %s has %d entries, want %d" %
                     (k, len(row[k]), pools))
    for k in ("configured_percents", "realized_percents"):
        if abs(sum(row[k]) - 100.0) > 1e-6:
            sys.exit("device_matrix: %s sums to %s, want 100" % (k, sum(row[k])))
    if not row["match_parity"]:
        sys.exit("device_matrix: match parity lost at %d devices" % row["device_count"])
rates = ", ".join("%dd %.0f MB/s" % (r["device_count"], r["throughput_mb_s"])
                  for r in profile)
tuned = ", ".join("%s->%sd" % (t["method"], t["device_count"])
                  for t in fleet.get("tuned", []))
print("device_matrix: %s | tuned: %s" % (rates, tuned))
# fault_matrix is required under hetopt-bench-v5: the zero-fault overhead of
# the recovery path is recorded, and every planned-fault recovery row must
# keep byte-exact match parity.
faults = doc["fault_matrix"]
overhead = faults["overhead"]
for k in ("plain_seconds", "probe_seconds", "overhead_percent",
          "guard_max_percent", "overhead_ok"):
    if k not in overhead:
        sys.exit("fault_matrix.overhead: missing %s" % k)
recovery = faults["recovery"]
if not recovery:
    sys.exit("fault_matrix: no recovery rows")
for row in recovery:
    for k in ("plan", "pools", "schedule", "match_parity", "failed_pools",
              "requeued_chunks", "chunk_retries", "degraded"):
        if k not in row:
            sys.exit("fault_matrix.recovery: missing %s" % k)
    if not row["match_parity"]:
        sys.exit("fault_matrix: parity lost under %r (%d pools, %s)" % (
            row["plan"], row["pools"], row["schedule"]))
healing = faults["self_healing"]
if not healing["transient_valid"] or healing["hopeless_valid"]:
    sys.exit("fault_matrix.self_healing: transient_valid=%s hopeless_valid=%s" % (
        healing["transient_valid"], healing["hopeless_valid"]))
print("fault_matrix: overhead %.2f%% (%s), %d recovery rows all parity-exact, "
      "%d invalid measurements absorbed" % (
          overhead["overhead_percent"],
          "ok" if overhead["overhead_ok"] else "OVER GUARD",
          len(recovery), healing["invalid_measurements"]))
# io_bound is required under hetopt-bench-v7: the out-of-core stream must
# cover a corpus at least 8x its resident budget with byte-exact parity on
# every row; the warm and stall expectations are escape-hatched on
# single-hardware-thread hosts (recorded as single_hw_thread).
io = doc["io_bound"]
for k in ("corpus_bytes", "page_bytes", "resident_pages", "corpus_over_budget",
          "budget_ratio_ge_8", "single_hw_thread", "in_memory", "cold", "warm",
          "prefetch_sweep", "budget_sweep", "stall_ok"):
    if k not in io:
        sys.exit("io_bound: missing %s" % k)
if not io["budget_ratio_ge_8"]:
    sys.exit("io_bound: corpus only %.2fx the resident budget (want >= 8x)" %
             io["corpus_over_budget"])
for name in ("in_memory", "cold", "warm"):
    if not io[name]["match_parity"]:
        sys.exit("io_bound: %s lost match parity" % name)
for row in io["prefetch_sweep"] + io["budget_sweep"]:
    if not row["match_parity"]:
        sys.exit("io_bound: sweep row lost match parity: %r" % row)
if not io["warm"]["warm_ok"]:
    sys.exit("io_bound: warm scan below tolerance")
if not io["stall_ok"]:
    sys.exit("io_bound: prefetch failed to reduce cold stalls")
depths = {row["depth"]: row["cold_stalls"] for row in io["prefetch_sweep"]}
print("io_bound: corpus %.1fx budget, cold %.0f MB/s (overlap %.3f), "
      "warm %.2fx in-memory, stalls by depth %s%s" % (
          io["corpus_over_budget"], io["cold"]["mb_s"],
          io["cold"]["overlap_efficiency"], io["warm"]["warm_over_in_memory"],
          sorted(depths.items()),
          " [single hw thread]" if io["single_hw_thread"] else ""))
PY
  # The repo commits one canonical smoke artifact; fail loudly when a schema
  # bump forgets to regenerate it (tools/run_bench.sh --smoke refreshes it).
  committed="${repo}/bench_out/BENCH_smoke.json"
  if [[ -f "${committed}" && "${json_out}" -ef "${committed}" ]]; then
    : # just regenerated above
  elif [[ -f "${committed}" ]]; then
    python3 - "${committed}" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
if doc.get("schema") != "hetopt-bench-v7":
    sys.exit("committed bench_out/BENCH_smoke.json has drifted: schema %r "
             "(want hetopt-bench-v7) — regenerate with tools/run_bench.sh --smoke"
             % doc.get("schema"))
print("committed artifact schema ok")
PY
  fi
fi

if [[ "${suite}" == "full" ]]; then
  cmake --build "${repo}/build" --target hetopt_bench -j
  for bin in "${repo}"/build/fig*_* "${repo}"/build/tab*_* "${repo}"/build/ablation_*; do
    [[ -x "${bin}" ]] || continue
    name="$(basename "${bin}")"
    echo "running ${name}..."
    "${bin}" > "${out_dir}/${name}.txt"
  done
  echo "paper-harness outputs in ${out_dir}/"
fi

echo "done: ${json_out}"
