#include "lint/lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace hetopt::lint {

namespace {

// ---------------------------------------------------------------------------
// The layer DAG. A layer may include itself and everything in its entry —
// the exact edge set, not "anything lower": dna may not reach ml even though
// both sit above util, which is what "no cross-layer includes" means.
// Mirrors the diagram in docs/ARCHITECTURE.md ("Analysis gates").
// ---------------------------------------------------------------------------
struct Layer {
  std::string_view name;
  std::vector<std::string_view> allowed;
};

const std::vector<Layer>& layers() {
  static const std::vector<Layer> table = {
      {"util", {}},
      {"parallel", {"util"}},
      {"dna", {"util"}},
      {"ml", {"util"}},
      {"sim", {"util", "parallel"}},
      {"automata", {"util", "parallel", "dna"}},
      {"opt", {"util", "parallel", "automata"}},
      {"core", {"util", "parallel", "dna", "ml", "sim", "automata", "opt"}},
  };
  return table;
}

const Layer* find_layer(std::string_view name) {
  for (const Layer& layer : layers()) {
    if (layer.name == name) return &layer;
  }
  return nullptr;
}

// Scan-kernel translation units for the kernel-throw rule (basenames within
// the automata layer). The SIMD kernel TUs inherit the same discipline: the
// vector loops report invalid input through a flag, never a throw.
constexpr std::array<std::string_view, 5> kKernelFiles = {
    "compiled_dfa.cpp", "bitap.cpp", "simd_scalar.cpp", "simd_sse2.cpp",
    "simd_avx2.cpp"};

[[nodiscard]] bool is_ident_char(char c) noexcept {
  return (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_';
}

// ---------------------------------------------------------------------------
// Source model: raw text, a stripped copy (comments and string/char literals
// blanked to spaces, newlines kept so offsets and line numbers agree), line
// starts, and the per-line suppression sets.
// ---------------------------------------------------------------------------
struct Source {
  std::string display_path;
  std::string_view raw;
  std::string stripped;
  std::vector<std::size_t> line_starts;          // offset of each line's first char
  std::map<std::size_t, std::set<std::string>> allows;  // line -> suppressed rules

  std::string_view layer;       // "" when no path component names a layer
  std::string_view basename;
  bool is_header = false;
  bool is_kernel_file = false;
  bool in_simd_dir = false;     // under automata/simd/: may use raw intrinsics

  [[nodiscard]] std::size_t line_of(std::size_t offset) const {
    const auto it =
        std::upper_bound(line_starts.begin(), line_starts.end(), offset);
    return static_cast<std::size_t>(it - line_starts.begin());
  }

  [[nodiscard]] bool suppressed(std::size_t line, std::string_view rule) const {
    const auto it = allows.find(line);
    return it != allows.end() && it->second.count(std::string(rule)) > 0;
  }
};

std::string strip(std::string_view raw) {
  std::string out(raw);
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const char c = raw[i];
    const char next = i + 1 < raw.size() ? raw[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;  // keep the quote: a token boundary
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == quote) {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

void parse_allows(Source& source) {
  static constexpr std::string_view kMarker = "hetopt-lint: allow(";
  std::size_t line = 1;
  std::size_t pos = 0;
  while (pos < source.raw.size()) {
    const std::size_t eol = source.raw.find('\n', pos);
    const std::string_view text =
        source.raw.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                             : eol - pos);
    const std::size_t marker = text.find(kMarker);
    if (marker != std::string_view::npos) {
      const std::size_t open = marker + kMarker.size();
      const std::size_t close = text.find(')', open);
      if (close != std::string_view::npos) {
        std::string rules(text.substr(open, close - open));
        std::replace(rules.begin(), rules.end(), ',', ' ');
        std::istringstream split(rules);
        std::string rule;
        while (split >> rule) source.allows[line].insert(rule);
      }
    }
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
    ++line;
  }
}

Source make_source(std::string_view display_path, std::string_view content) {
  Source source;
  source.display_path = std::string(display_path);
  source.raw = content;
  source.stripped = strip(content);
  source.line_starts.push_back(0);
  for (std::size_t i = 0; i < content.size(); ++i) {
    if (content[i] == '\n') source.line_starts.push_back(i + 1);
  }
  parse_allows(source);

  // Split the path; the layer is the component nearest the file that names
  // a known layer, so /tmp/fixture/core/bad.cpp lints exactly like
  // src/core/bad.cpp.
  std::vector<std::string_view> components;
  std::size_t begin = 0;
  for (std::size_t i = 0; i <= display_path.size(); ++i) {
    if (i == display_path.size() || display_path[i] == '/' ||
        display_path[i] == '\\') {
      if (i > begin) components.push_back(display_path.substr(begin, i - begin));
      begin = i + 1;
    }
  }
  source.basename = components.empty() ? display_path : components.back();
  for (std::size_t i = components.size(); i-- > 1;) {
    if (find_layer(components[i - 1]) != nullptr) {
      source.layer = components[i - 1];
      break;
    }
  }
  source.is_header = source.basename.size() > 4 &&
                     source.basename.substr(source.basename.size() - 4) == ".hpp";
  source.is_kernel_file =
      source.layer == "automata" &&
      std::find(kKernelFiles.begin(), kKernelFiles.end(), source.basename) !=
          kKernelFiles.end();
  // A *directory* component "simd" inside the automata layer (the basename
  // itself does not count): automata/simd/** is the intrinsics enclave.
  if (source.layer == "automata") {
    for (std::size_t i = 0; i + 1 < components.size(); ++i) {
      if (components[i] == "simd") {
        source.in_simd_dir = true;
        break;
      }
    }
  }
  return source;
}

void report(const Source& source, std::vector<Diagnostic>& out, std::size_t offset,
            std::string_view rule, std::string message) {
  const std::size_t line = source.line_of(offset);
  if (source.suppressed(line, rule)) return;
  out.push_back({source.display_path, line, std::string(rule), std::move(message)});
}

// ---------------------------------------------------------------------------
// Token search helpers over the stripped text.
// ---------------------------------------------------------------------------

/// Offsets of `word` appearing as a whole identifier.
std::vector<std::size_t> find_identifiers(std::string_view text, std::string_view word) {
  std::vector<std::size_t> hits;
  std::size_t pos = text.find(word);
  while (pos != std::string_view::npos) {
    const char prev = pos > 0 ? text[pos - 1] : '\0';
    const std::size_t end = pos + word.size();
    const char next = end < text.size() ? text[end] : '\0';
    if (!is_ident_char(prev) && !is_ident_char(next)) hits.push_back(pos);
    pos = text.find(word, pos + 1);
  }
  return hits;
}

/// True when the next non-space character at/after `pos` is '('; returns its
/// offset through `open`.
bool followed_by_call(std::string_view text, std::size_t pos, std::size_t& open) {
  while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t')) ++pos;
  if (pos < text.size() && text[pos] == '(') {
    open = pos;
    return true;
  }
  return false;
}

/// Offset one past the parenthesis matching the '(' at `open` (or npos).
std::size_t matching_paren_end(std::string_view text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '(') ++depth;
    if (text[i] == ')' && --depth == 0) return i + 1;
  }
  return std::string_view::npos;
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

void rule_layer_dag(const Source& source, std::vector<Diagnostic>& out) {
  const Layer* layer = find_layer(source.layer);
  if (layer == nullptr) return;
  const std::string_view text = source.stripped;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::size_t len = eol == std::string_view::npos ? text.size() - pos : eol - pos;
    std::string_view line = text.substr(pos, len);
    const std::size_t hash = line.find_first_not_of(" \t");
    if (hash != std::string_view::npos && line[hash] == '#' &&
        line.find("include", hash) != std::string_view::npos) {
      // The quotes survive stripping but the literal's *contents* are
      // blanked; recover the include path from the raw text at the same
      // offsets (stripped and raw are position-aligned by construction).
      const std::size_t quote = line.find('"');
      const std::size_t close =
          quote == std::string_view::npos ? std::string_view::npos
                                          : line.find('"', quote + 1);
      if (close != std::string_view::npos) {
        const std::string_view target =
            source.raw.substr(pos + quote + 1, close - quote - 1);
        const std::size_t slash = target.find('/');
        if (slash != std::string_view::npos) {
          const std::string_view dir = target.substr(0, slash);
          const bool ok =
              dir == layer->name ||
              std::find(layer->allowed.begin(), layer->allowed.end(), dir) !=
                  layer->allowed.end();
          if (!ok) {
            std::string message = "layer '";
            message.append(layer->name);
            message.append("' must not include \"");
            message.append(target);
            message.append("\" — its layer-DAG reach is {");
            message.append(layer->name);
            for (const std::string_view a : layer->allowed) {
              message.append(", ");
              message.append(a);
            }
            message.append("} (docs/ARCHITECTURE.md: Analysis gates)");
            report(source, out, pos + quote, "layer-dag", std::move(message));
          }
        }
      }
    }
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
  }
}

void rule_nondeterminism(const Source& source, std::vector<Diagnostic>& out) {
  if (source.layer == "util") return;  // the one layer allowed to touch clocks/entropy
  const std::string_view text = source.stripped;
  static constexpr std::string_view kRule = "nondeterminism";
  for (const std::size_t pos : find_identifiers(text, "random_device")) {
    report(source, out, pos, kRule,
           "std::random_device draws real entropy; all randomness flows through "
           "util::rng so seeded runs reproduce bit-exactly");
  }
  for (const std::string_view fn : {std::string_view("rand"), std::string_view("srand")}) {
    for (const std::size_t pos : find_identifiers(text, fn)) {
      std::size_t open = 0;
      if (followed_by_call(text, pos + fn.size(), open)) {
        std::string message(fn);
        message.append("() is global, unseeded state; draw from util::rng instead");
        report(source, out, pos, kRule, std::move(message));
      }
    }
  }
  for (const std::size_t pos : find_identifiers(text, "time")) {
    std::size_t open = 0;
    if (followed_by_call(text, pos + 4, open)) {
      report(source, out, pos, kRule,
             "time() reads the wall clock; timing belongs to util::Timer, seeds to "
             "util::rng");
    }
  }
  for (const std::size_t pos : find_identifiers(text, "system_clock")) {
    report(source, out, pos, kRule,
           "std::chrono::system_clock is settable wall-clock time; util::Timer "
           "(steady_clock, util/ only) is the one clock in the tree");
  }
}

void rule_atomic_order(const Source& source, std::vector<Diagnostic>& out) {
  if (source.layer != "parallel" && source.layer != "core") return;
  static constexpr std::array<std::string_view, 10> kOps = {
      "load",          "store",          "exchange",  "fetch_add",
      "fetch_sub",     "fetch_and",      "fetch_or",  "fetch_xor",
      "compare_exchange_weak", "compare_exchange_strong"};
  const std::string_view text = source.stripped;
  for (const std::string_view op : kOps) {
    for (const std::size_t pos : find_identifiers(text, op)) {
      const bool member_call =
          (pos >= 1 && text[pos - 1] == '.') ||
          (pos >= 2 && text[pos - 2] == '-' && text[pos - 1] == '>');
      if (!member_call) continue;
      std::size_t open = 0;
      if (!followed_by_call(text, pos + op.size(), open)) continue;
      const std::size_t end = matching_paren_end(text, open);
      if (end == std::string_view::npos) continue;
      if (text.substr(open, end - open).find("memory_order") == std::string_view::npos) {
        std::string message = "atomic .";
        message.append(op);
        message.append(
            "() defaults to seq_cst — name the std::memory_order explicitly "
            "and justify it in a comment (model: parallel/chunk_queue.cpp)");
        report(source, out, pos, "atomic-order", std::move(message));
      }
    }
  }
}

void rule_kernel_throw(const Source& source, std::vector<Diagnostic>& out) {
  if (!source.is_kernel_file) return;
  const std::string_view text = source.stripped;
  std::vector<bool> loop_scope;   // one entry per open brace
  std::size_t loop_depth = 0;     // open braces that belong to a loop
  int paren_depth = 0;
  bool pending_loop = false;      // saw for/while, its '{' not reached yet
  std::size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (is_ident_char(c)) {
      std::size_t end = i;
      while (end < text.size() && is_ident_char(text[end])) ++end;
      const std::string_view token = text.substr(i, end - i);
      if (token == "for" || token == "while") {
        pending_loop = true;
      } else if (token == "throw" && (pending_loop || loop_depth > 0)) {
        report(source, out, i, "kernel-throw",
               "`throw` inside a scan-kernel loop body; detect the error "
               "branch-free and dispatch to the cold helper after the loop "
               "(model: CompiledDfa::throw_invalid)");
      }
      i = end;
      continue;
    }
    switch (c) {
      case '(': ++paren_depth; break;
      case ')': --paren_depth; break;
      case '{':
        loop_scope.push_back(pending_loop);
        if (pending_loop) ++loop_depth;
        pending_loop = false;
        break;
      case '}':
        if (!loop_scope.empty()) {
          if (loop_scope.back()) --loop_depth;
          loop_scope.pop_back();
        }
        break;
      case ';':
        // Ends a braceless loop body (or a do-while tail); the semicolons
        // inside a `for (...)` header sit at paren_depth > 0.
        if (paren_depth == 0) pending_loop = false;
        break;
      default: break;
    }
    ++i;
  }
}

void rule_raw_intrinsics(const Source& source, std::vector<Diagnostic>& out) {
  if (source.in_simd_dir) return;  // the one directory allowed raw vector code
  static constexpr std::array<std::string_view, 6> kPrefixes = {
      "_mm_", "_mm256_", "_mm512_", "__m128", "__m256", "__m512"};
  const std::string_view text = source.stripped;
  std::size_t i = 0;
  while (i < text.size()) {
    if (!is_ident_char(text[i])) {
      ++i;
      continue;
    }
    std::size_t end = i;
    while (end < text.size() && is_ident_char(text[end])) ++end;
    const std::string_view token = text.substr(i, end - i);
    for (const std::string_view prefix : kPrefixes) {
      if (token.size() >= prefix.size() && token.substr(0, prefix.size()) == prefix) {
        std::string message = "raw vector intrinsic/type '";
        message.append(token);
        message.append(
            "' outside automata/simd/ — all vector code lives behind the "
            "kernel tables in automata/simd/simd_kernels.hpp so scalar builds "
            "stub one directory");
        report(source, out, i, "raw-intrinsics", std::move(message));
        break;
      }
    }
    i = end;
  }
}

void rule_silent_catch(const Source& source, std::vector<Diagnostic>& out) {
  if (source.layer != "parallel" && source.layer != "core") return;
  // A handler counts as non-silent when its body rethrows (`throw`) or calls
  // into the error-recording machinery — identified by an identifier carrying
  // one of these substrings (record_worker_error, mark_failed, retries,
  // current_exception, ...). Comments are stripped before matching, so prose
  // about errors cannot satisfy the rule.
  static constexpr std::array<std::string_view, 6> kHandlingTokens = {
      "record", "report", "fail", "error", "retr", "current_exception"};
  const std::string_view text = source.stripped;
  for (const std::size_t pos : find_identifiers(text, "catch")) {
    std::size_t open = 0;
    if (!followed_by_call(text, pos + 5, open)) continue;
    const std::size_t params_end = matching_paren_end(text, open);
    if (params_end == std::string_view::npos) continue;
    std::size_t brace = params_end;
    while (brace < text.size() &&
           (text[brace] == ' ' || text[brace] == '\t' || text[brace] == '\n')) {
      ++brace;
    }
    if (brace >= text.size() || text[brace] != '{') continue;
    int depth = 0;
    std::size_t body_end = std::string_view::npos;
    for (std::size_t i = brace; i < text.size(); ++i) {
      if (text[i] == '{') ++depth;
      if (text[i] == '}' && --depth == 0) {
        body_end = i;
        break;
      }
    }
    if (body_end == std::string_view::npos) continue;
    const std::string_view body = text.substr(brace + 1, body_end - brace - 1);
    bool handled = false;
    std::size_t i = 0;
    while (i < body.size() && !handled) {
      if (!is_ident_char(body[i])) {
        ++i;
        continue;
      }
      std::size_t end = i;
      while (end < body.size() && is_ident_char(body[end])) ++end;
      const std::string_view token = body.substr(i, end - i);
      if (token == "throw") {
        handled = true;
      } else {
        for (const std::string_view needle : kHandlingTokens) {
          if (token.find(needle) != std::string_view::npos) {
            handled = true;
            break;
          }
        }
      }
      i = end;
    }
    if (!handled) {
      report(source, out, pos, "silent-catch",
             "catch body neither rethrows nor records the error; in parallel/ "
             "and core/ a swallowed exception silently corrupts recovery "
             "telemetry — rethrow, record/report it, or justify with "
             "`// hetopt-lint: allow(silent-catch)` on the catch line");
    }
  }
}

void rule_pragma_once(const Source& source, std::vector<Diagnostic>& out) {
  if (!source.is_header) return;
  if (source.stripped.find("#pragma once") == std::string::npos) {
    report(source, out, 0, "pragma-once",
           "header is missing `#pragma once` (every hetopt header starts with it)");
  }
}

}  // namespace

std::string to_string(const Diagnostic& diagnostic) {
  // append() rather than chained operator+ — GCC 12's -Wrestrict false
  // positive (PR105651) rejects the temporaries chain under -Werror.
  std::string out = diagnostic.file;
  out.append(":");
  out.append(std::to_string(diagnostic.line));
  out.append(": ");
  out.append(diagnostic.rule);
  out.append(": ");
  out.append(diagnostic.message);
  return out;
}

std::vector<Diagnostic> lint_source(std::string_view display_path,
                                    std::string_view content) {
  const Source source = make_source(display_path, content);
  std::vector<Diagnostic> out;
  rule_layer_dag(source, out);
  rule_nondeterminism(source, out);
  rule_atomic_order(source, out);
  rule_kernel_throw(source, out);
  rule_raw_intrinsics(source, out);
  rule_silent_catch(source, out);
  rule_pragma_once(source, out);
  return out;
}

std::vector<Diagnostic> lint_tree(const std::filesystem::path& root) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(root)) {
    throw std::runtime_error("hetopt_lint: not a directory: " + root.string());
  }
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".hpp" || ext == ".cpp") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());

  std::vector<Diagnostic> out;
  for (const fs::path& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("hetopt_lint: cannot read " + path.string());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string content = buffer.str();
    for (Diagnostic& d : lint_source(path.generic_string(), content)) {
      out.push_back(std::move(d));
    }
  }
  return out;
}

}  // namespace hetopt::lint
