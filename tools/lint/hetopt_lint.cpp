// Command-line front end for the repo lint (tools/lint/lint.hpp): lints the
// given trees/files and exits non-zero when any rule fires. The CI
// `static-analysis` job and `tools/run_lint.sh` run it over src/; it is also
// registered as the `lint` ctest.
//
//   hetopt_lint [path...]      default path: src
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace {

constexpr const char* kUsage =
    "usage: hetopt_lint [path...]\n"
    "  Lints every *.hpp/*.cpp under each path (default: src) against the\n"
    "  hetopt rules: layer-dag, nondeterminism, atomic-order, kernel-throw,\n"
    "  pragma-once. Diagnostics are `file:line: rule-id: message`; the exit\n"
    "  status is 1 when any fire. See docs/ARCHITECTURE.md (Analysis gates).\n";

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) paths.emplace_back("src");

  std::vector<hetopt::lint::Diagnostic> diagnostics;
  try {
    for (const std::string& path : paths) {
      if (std::filesystem::is_directory(path)) {
        for (auto& d : hetopt::lint::lint_tree(path)) {
          diagnostics.push_back(std::move(d));
        }
      } else {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
          std::cerr << "hetopt_lint: cannot read " << path << "\n";
          return 2;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        const std::string content = buffer.str();
        for (auto& d : hetopt::lint::lint_source(path, content)) {
          diagnostics.push_back(std::move(d));
        }
      }
    }
  } catch (const std::exception& error) {
    std::cerr << error.what() << "\n";
    return 2;
  }

  for (const auto& diagnostic : diagnostics) {
    std::cout << hetopt::lint::to_string(diagnostic) << "\n";
  }
  if (!diagnostics.empty()) {
    std::cerr << "hetopt_lint: " << diagnostics.size() << " violation(s)\n";
    return 1;
  }
  std::cerr << "hetopt_lint: clean\n";
  return 0;
}
