// hetopt_lint — the repo-specific static analyzer (no libclang: a small
// self-contained scanner over the source text, so it runs anywhere the
// toolchain does and stays fast enough for a ctest).
//
// It enforces the invariants a generic tool cannot know about:
//
//   rule id          scope                 invariant
//   ---------------  --------------------  -------------------------------------
//   layer-dag        src/<layer>/**        #include edges must follow the layer
//                                          DAG (docs/ARCHITECTURE.md): no upward
//                                          or cross-layer includes.
//   nondeterminism   everywhere but util/  no std::random_device, rand()/srand(),
//                                          time(), or system_clock — randomness
//                                          flows through util::rng, clocks
//                                          through util::timer, so seeded runs
//                                          stay bit-reproducible.
//   atomic-order     parallel/, core/      every atomic operation names an
//                                          explicit std::memory_order (the
//                                          chunk_queue.cpp CAS loop is the
//                                          model); a defaulted seq_cst call is
//                                          an unreviewed fence.
//   kernel-throw     automata kernel TUs   no `throw` inside a loop body of the
//                                          scan kernels (compiled_dfa.cpp,
//                                          bitap.cpp): invalid input is detected
//                                          branch-free and reported once per
//                                          chunk from the cold path.
//   raw-intrinsics   everywhere but        no raw vector intrinsics or vector
//                    automata/simd/        types (_mm_*/_mm256_*/_mm512_*,
//                                          __m128*/__m256*/__m512*) outside the
//                                          SIMD kernel directory — every other
//                                          layer reaches vector code through
//                                          the dispatch table in
//                                          automata/simd/simd_kernels.hpp, so
//                                          a scalar build only has to stub one
//                                          directory.
//   silent-catch     parallel/, core/      every catch body must rethrow or
//                                          record the error (an identifier
//                                          containing record/report/fail/error/
//                                          retr/current_exception); a swallowed
//                                          exception in the execution runtime
//                                          silently corrupts recovery telemetry.
//   pragma-once      *.hpp                 every header starts with #pragma once.
//
// Comments and string/character literals are stripped before matching, so
// prose never trips a rule. A violation that is deliberate (e.g. the cold
// throw helper a kernel dispatches to) is silenced on its own line with
//
//   ... code ...  // hetopt-lint: allow(rule-id)
//
// and the justification belongs in the surrounding comment.
//
// Diagnostics are `file:line: rule-id: message`, exit status 1 when any fire.
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace hetopt::lint {

struct Diagnostic {
  std::string file;  // as cited: display path of the offending file
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string message;
};

/// "file:line: rule-id: message" — the format the CI gate and the fixtures
/// grep for.
[[nodiscard]] std::string to_string(const Diagnostic& diagnostic);

/// Lints one translation unit. `display_path` is what diagnostics cite; the
/// file's layer is the path component nearest the file that names a known
/// layer (util, parallel, dna, ml, sim, automata, opt, core), so fixture
/// trees mirroring src/'s layout lint identically from any root.
[[nodiscard]] std::vector<Diagnostic> lint_source(std::string_view display_path,
                                                  std::string_view content);

/// Walks `root` (a directory laid out like src/) and lints every *.hpp and
/// *.cpp beneath it in sorted path order. Diagnostics cite root/<relative>.
/// Throws std::runtime_error when root is not a readable directory.
[[nodiscard]] std::vector<Diagnostic> lint_tree(const std::filesystem::path& root);

}  // namespace hetopt::lint
