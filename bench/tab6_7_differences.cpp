// Tables VI and VII: percent difference and absolute difference [s] between
// the configuration suggested by SAML after N iterations and the EM optimum
// (Eqs. 7-8), per genome plus the cross-genome average.
#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace hetopt;
  const bench::Env env;
  const core::TrainingData data = bench::paper_training_data(env);
  const core::PerformancePredictor predictor = bench::trained_predictor(data);
  constexpr int kSeeds = 5;

  const auto& budgets = bench::iteration_budgets();
  std::vector<std::vector<double>> abs_diff;  // [genome][budget]
  std::vector<std::vector<double>> pct_diff;
  std::vector<std::string> names;

  for (const auto& workload : env.workloads()) {
    const auto em = core::run_em(env.space, env.machine, workload);
    std::vector<double> abs_row;
    std::vector<double> pct_row;
    for (const std::size_t budget : budgets) {
      double sum = 0.0;
      for (int seed = 0; seed < kSeeds; ++seed) {
        const auto sa = core::sa_params_for_iterations(
            budget, static_cast<std::uint64_t>(seed) * 131 + budget);
        sum += core::run_saml(env.space, env.machine, workload, predictor, sa)
                   .measured_time;
      }
      const double t_saml = sum / kSeeds;
      const double abs = std::abs(em.measured_time - t_saml);  // Eq. 7
      abs_row.push_back(abs);
      pct_row.push_back(100.0 * abs / em.measured_time);  // Eq. 8
    }
    abs_diff.push_back(std::move(abs_row));
    pct_diff.push_back(std::move(pct_row));
    names.push_back(workload.name);
  }

  const auto print = [&](const char* title, const std::vector<std::vector<double>>& m,
                         int precision) {
    util::Table table(title);
    std::vector<std::string> header{"DNA"};
    for (const std::size_t b : budgets) header.push_back(std::to_string(b));
    table.header(std::move(header));
    std::vector<double> avg(budgets.size(), 0.0);
    for (std::size_t g = 0; g < m.size(); ++g) {
      std::vector<std::string> row{names[g]};
      for (std::size_t b = 0; b < budgets.size(); ++b) {
        row.push_back(bench::num(m[g][b], precision));
        avg[b] += m[g][b] / static_cast<double>(m.size());
      }
      table.row(std::move(row));
    }
    std::vector<std::string> avg_row{"average"};
    for (double v : avg) avg_row.push_back(bench::num(v, precision));
    table.row(std::move(avg_row));
    table.print(std::cout);
    std::cout << '\n';
  };

  print("Table VI: percent difference [%], SAML vs EM", pct_diff, 2);
  print("Table VII: absolute difference [s], SAML vs EM", abs_diff, 3);
  std::cout << "Paper averages (Table VI): 19.7% @250 iters falling to 6.8% @2000; "
               "(Table VII): 0.075 s falling to 0.026 s.\n";
  return 0;
}
