// Shared setup for the table/figure harnesses: the simulated machine, the
// paper configuration space, the four genomes, and a predictor trained on
// the full 7200-experiment sweep. Every harness prints through util::Table
// so EXPERIMENTS.md can quote outputs verbatim.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/hetopt.hpp"
#include "dna/catalog.hpp"
#include "opt/config_space.hpp"
#include "sim/machine.hpp"
#include "util/table.hpp"

namespace hetopt::bench {

struct Env {
  sim::Machine machine = sim::emil_machine();
  opt::ConfigSpace space = opt::ConfigSpace::paper();
  dna::GenomeCatalog catalog;

  [[nodiscard]] std::vector<core::Workload> workloads() const {
    std::vector<core::Workload> out;
    for (const auto& g : catalog.all()) out.emplace_back(g.name, g.size_mb);
    return out;
  }
};

/// Runs the paper training sweep and returns the raw data.
[[nodiscard]] core::TrainingData paper_training_data(const Env& env);

/// Trains a predictor on all 7200 experiments (used by search harnesses).
[[nodiscard]] core::PerformancePredictor trained_predictor(const core::TrainingData& data);

/// Fixed-width helpers for table cells.
[[nodiscard]] std::string num(double v, int precision = 3);

/// The SA iteration budgets of Fig. 9 / Tables VI-IX.
[[nodiscard]] const std::vector<std::size_t>& iteration_budgets();

/// One decoded evaluation experiment (undoes the one-hot feature layout).
struct EvalPoint {
  double size_mb = 0.0;
  int threads = 0;
  std::size_t affinity_index = 0;  // index into kAllHostAffinities / device
  double measured = 0.0;
  double predicted = 0.0;
};

/// Predicts every row of an evaluation split with the matching environment
/// model and decodes the features back into (size, threads, affinity).
[[nodiscard]] std::vector<EvalPoint> evaluate_host_rows(
    const core::PerformancePredictor& predictor, const ml::Dataset& eval);
[[nodiscard]] std::vector<EvalPoint> evaluate_device_rows(
    const core::PerformancePredictor& predictor, const ml::Dataset& eval);

}  // namespace hetopt::bench
