// Fig. 6: measured vs predicted execution time on the Xeon Phi device,
// balanced affinity, for 30/60/120/240 threads across file sizes (eval half
// of the 4320 device experiments).
#include <algorithm>
#include <iostream>
#include <map>

#include "bench/common.hpp"

int main() {
  using namespace hetopt;
  const bench::Env env;
  const core::TrainingData data = bench::paper_training_data(env);
  const auto [train_host, eval_host] = data.host.split_half(2016);
  const auto [train_device, eval_device] = data.device.split_half(2016);
  core::PerformancePredictor predictor;
  predictor.train(train_host, train_device);

  const auto points = bench::evaluate_device_rows(predictor, eval_device);

  constexpr std::size_t kBalancedIdx = 0;  // kAllDeviceAffinities order
  const std::vector<int> wanted_threads{30, 60, 120, 240};
  std::map<double, std::map<int, const bench::EvalPoint*>> by_size;
  for (const auto& p : points) {
    if (p.affinity_index != kBalancedIdx) continue;
    if (std::find(wanted_threads.begin(), wanted_threads.end(), p.threads) ==
        wanted_threads.end()) {
      continue;
    }
    by_size[p.size_mb][p.threads] = &p;
  }

  util::Table table(
      "Fig 6: device prediction accuracy (thread affinity = balanced, eval half)");
  std::vector<std::string> header{"File size [MB]"};
  for (int t : wanted_threads) {
    header.push_back(std::to_string(t) + "t measured");
    header.push_back(std::to_string(t) + "t predicted");
  }
  table.header(std::move(header));

  for (const auto& [size, cols] : by_size) {
    std::vector<std::string> row{bench::num(size, 0)};
    for (int t : wanted_threads) {
      const auto it = cols.find(t);
      if (it == cols.end()) {
        row.push_back("-");
        row.push_back("-");
      } else {
        row.push_back(bench::num(it->second->measured));
        row.push_back(bench::num(it->second->predicted));
      }
    }
    table.row(std::move(row));
  }
  table.note("total device experiments: " + std::to_string(data.device.size()) +
             " (train " + std::to_string(train_device.size()) + " / eval " +
             std::to_string(eval_device.size()) + ")");
  table.print(std::cout);
  return 0;
}
