// Fig. 7: histogram of absolute prediction errors on the host eval half,
// with the paper's (irregular) bin edges 0.01 ... 0.2 s.
#include <iostream>

#include "bench/common.hpp"
#include "util/stats.hpp"

int main() {
  using namespace hetopt;
  const bench::Env env;
  const core::TrainingData data = bench::paper_training_data(env);
  const auto [train_host, eval_host] = data.host.split_half(2016);
  const auto [train_device, eval_device] = data.device.split_half(2016);
  core::PerformancePredictor predictor;
  predictor.train(train_host, train_device);

  util::Histogram hist({0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.08, 0.1, 0.15, 0.2});
  for (const auto& p : bench::evaluate_host_rows(predictor, eval_host)) {
    hist.add(std::abs(p.measured - p.predicted));
  }

  util::Table table("Fig 7: error histogram, host predictions (eval half)");
  table.header({"Absolute error [s]", "Frequency", "Bar"});
  for (std::size_t i = 0; i < hist.bin_count(); ++i) {
    const std::size_t c = hist.count(i);
    table.row({hist.label(i), std::to_string(c),
               std::string(std::min<std::size_t>(60, c / 5), '#')});
  }
  table.note("eval points: " + std::to_string(hist.total()) +
             "; paper shape: mass concentrated below 0.02 s, long thin tail");
  table.print(std::cout);
  return 0;
}
