// Tables VIII and IX: speedup of the heterogeneous execution under the
// configuration suggested by SAML (after 250..2000 iterations) and by EM,
// relative to host-only (48 threads) and device-only (240 threads) runs.
#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace hetopt;
  const bench::Env env;
  const core::TrainingData data = bench::paper_training_data(env);
  const core::PerformancePredictor predictor = bench::trained_predictor(data);
  constexpr int kSeeds = 5;

  const auto& budgets = bench::iteration_budgets();
  util::Table tab8("Table VIII: speedup vs host-only (48 threads)");
  util::Table tab9("Table IX: speedup vs device-only (240 threads)");
  for (util::Table* t : {&tab8, &tab9}) {
    std::vector<std::string> header{"DNA"};
    for (const std::size_t b : budgets) header.push_back(std::to_string(b));
    header.push_back("EM");
    t->header(std::move(header));
  }

  for (const auto& workload : env.workloads()) {
    const auto em = core::run_em(env.space, env.machine, workload);
    const auto host_only = core::host_only_baseline(env.space, env.machine, workload);
    const auto device_only = core::device_only_baseline(env.space, env.machine, workload);

    std::vector<std::string> row8{workload.name};
    std::vector<std::string> row9{workload.name};
    for (const std::size_t budget : budgets) {
      double sum = 0.0;
      for (int seed = 0; seed < kSeeds; ++seed) {
        const auto sa = core::sa_params_for_iterations(
            budget, static_cast<std::uint64_t>(seed) * 131 + budget);
        sum += core::run_saml(env.space, env.machine, workload, predictor, sa)
                   .measured_time;
      }
      const double t_saml = sum / kSeeds;
      row8.push_back(bench::num(host_only.measured_time / t_saml, 2));
      row9.push_back(bench::num(device_only.measured_time / t_saml, 2));
    }
    row8.push_back(bench::num(host_only.measured_time / em.measured_time, 2));
    row9.push_back(bench::num(device_only.measured_time / em.measured_time, 2));
    tab8.row(std::move(row8));
    tab9.row(std::move(row9));
  }

  tab8.note("paper: up to 1.74x after 1000 iterations; EM up to 1.95x");
  tab9.note("paper: up to 2.18x after 1000 iterations; EM up to 2.36x");
  tab8.print(std::cout);
  std::cout << '\n';
  tab9.print(std::cout);
  return 0;
}
