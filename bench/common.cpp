#include "bench/common.hpp"

#include "util/strings.hpp"

namespace hetopt::bench {

core::TrainingData paper_training_data(const Env& env) {
  return core::generate_training_data(env.machine, env.catalog,
                                      core::TrainingSweepOptions::paper());
}

core::PerformancePredictor trained_predictor(const core::TrainingData& data) {
  core::PerformancePredictor predictor;
  predictor.train(data.host, data.device);
  return predictor;
}

std::string num(double v, int precision) { return util::format_double(v, precision); }

const std::vector<std::size_t>& iteration_budgets() {
  static const std::vector<std::size_t> budgets{250, 500, 750, 1000, 1250, 1500, 1750, 2000};
  return budgets;
}

namespace {

[[nodiscard]] std::size_t one_hot_index(std::span<const double> row) {
  for (std::size_t j = 2; j < row.size(); ++j) {
    if (row[j] > 0.5) return j - 2;
  }
  return 0;
}

}  // namespace

std::vector<EvalPoint> evaluate_host_rows(const core::PerformancePredictor& predictor,
                                          const ml::Dataset& eval) {
  std::vector<EvalPoint> out;
  out.reserve(eval.size());
  for (std::size_t i = 0; i < eval.size(); ++i) {
    const auto row = eval.row(i);
    EvalPoint p;
    p.size_mb = row[0];
    p.threads = static_cast<int>(row[1]);
    p.affinity_index = one_hot_index(row);
    p.measured = eval.target(i);
    p.predicted = predictor.predict_host(p.size_mb, p.threads,
                                         parallel::kAllHostAffinities[p.affinity_index]);
    out.push_back(p);
  }
  return out;
}

std::vector<EvalPoint> evaluate_device_rows(const core::PerformancePredictor& predictor,
                                            const ml::Dataset& eval) {
  std::vector<EvalPoint> out;
  out.reserve(eval.size());
  for (std::size_t i = 0; i < eval.size(); ++i) {
    const auto row = eval.row(i);
    EvalPoint p;
    p.size_mb = row[0];
    p.threads = static_cast<int>(row[1]);
    p.affinity_index = one_hot_index(row);
    p.measured = eval.target(i);
    p.predicted = predictor.predict_device(
        p.size_mb, p.threads, parallel::kAllDeviceAffinities[p.affinity_index]);
    out.push_back(p);
  }
  return out;
}

}  // namespace hetopt::bench
