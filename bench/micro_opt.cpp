// google-benchmark microbenchmarks for the optimization substrate: the cost
// of one SA run at the paper's budgets, full enumeration, and the simulated
// measurement itself (the per-experiment cost everything else multiplies).
#include <benchmark/benchmark.h>

#include "core/methods.hpp"
#include "opt/enumeration.hpp"
#include "opt/simulated_annealing.hpp"
#include "sim/machine.hpp"

namespace {

using namespace hetopt;

void BM_SimulatedMeasurement(benchmark::State& state) {
  const sim::Machine machine = sim::emil_machine();
  std::uint64_t rep = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(machine.measure_combined(
        3170.0, 62.5, 24, parallel::HostAffinity::kScatter, 120,
        parallel::DeviceAffinity::kBalanced, ++rep));
  }
}
BENCHMARK(BM_SimulatedMeasurement);

void BM_SimulatedAnnealingRun(benchmark::State& state) {
  const sim::Machine machine = sim::emil_machine();
  const opt::ConfigSpace space = opt::ConfigSpace::paper();
  const core::Workload human("human", 3170.0);
  const auto iterations = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_sam(
        space, machine, human, core::sa_params_for_iterations(iterations, ++seed)));
  }
}
BENCHMARK(BM_SimulatedAnnealingRun)->Arg(250)->Arg(1000)->Arg(2000);

void BM_FullEnumeration(benchmark::State& state) {
  const sim::Machine machine = sim::emil_machine();
  const opt::ConfigSpace space = opt::ConfigSpace::paper();
  const core::Workload human("human", 3170.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_em(space, machine, human));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(space.size()));
}
BENCHMARK(BM_FullEnumeration);

void BM_NeighborMove(benchmark::State& state) {
  const opt::ConfigSpace space = opt::ConfigSpace::paper();
  util::Xoshiro256 rng(3);
  opt::SystemConfig c = space.random(rng);
  for (auto _ : state) {
    c = space.neighbor(c, rng);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_NeighborMove);

}  // namespace

BENCHMARK_MAIN();
