// Unified benchmark runner: the one CLI behind tools/run_bench.sh. Where the
// fig*/tab*/ablation* harnesses print paper-shaped text tables, this runner
// measures the *real* PaREM-style matcher under the tuner and emits a
// machine-readable BENCH_*.json — the perf trajectory artifact every PR can
// compare against:
//
//   scan_kernel          single-thread kernel ladder: the seed per-byte scan
//                        loop (naive) vs the compiled kernels (byte-fused /
//                        paired 2-bases-per-step / multi-stream interleaved /
//                        chunk-parallel), MB/s and speedup-vs-naive per row.
//                        Exits non-zero when the fused kernel falls below a
//                        coarse 1.5x guard over naive (CI gate).
//   simd_matrix          the ISA tier measured for real: per-ISA whole-genome
//                        MB/s for the lane-parallel bitap (vs the scalar
//                        bitap engine) and the prefiltered DFA scan (vs the
//                        plain compiled-dfa engine), match parity per row as
//                        a hard exit gate; the >=2x-on-AVX2 expectation is
//                        recorded with a warning, never gated
//   matcher_throughput   chunk-parallel scan throughput (MB/s) vs chunk count
//   io_bound             the out-of-core streaming path measured for real:
//                        the same corpus scanned in memory, cold through a
//                        page cache whose resident budget is ~1/8 of the
//                        corpus, and warm with everything resident; a
//                        prefetch-depth sweep (cold stalls vs the depth-0
//                        baseline) and a resident-budget sweep. Match parity
//                        on every row is a hard exit gate; the warm >=80%
//                        and depth-2-stalls-below-depth-0 expectations gate
//                        too, except on single-hardware-thread hosts where
//                        they warn
//   engine_matrix        the match-engine axis measured for real: MB/s per
//                        engine (compiled-dfa / aho-corasick / bitap) x chunk
//                        count x motif-set shape, plus the tuned-winner
//                        engine per Table II preset on an engine-enabled
//                        space — which engine *should* the tuner pick for
//                        few long literals vs many short IUPAC motifs?
//   schedule_matrix      the work-distribution axis measured for real: MB/s
//                        per schedule policy (static / dynamic / guided /
//                        adaptive) x fraction x chunk count, a skew block
//                        (a deliberately wrong fraction, where the
//                        demand-driven schedules must recover what static
//                        wastes), and the tuned-winner policy per Table II
//                        preset on a schedule-enabled space
//   device_matrix        the fleet axis measured for real: the EM-real winner
//                        executed with 1..4 emulated-device pools (configured
//                        vs realized per-pool shares, steals, throughput —
//                        the configured shares come from the water-filling
//                        distribute oracle), and the tuned-winner fleet size
//                        per Table II preset on a device-count-enabled space
//   table2_real          the four Table II presets tuning the live matcher on
//                        a scaled-down genome (EM/SAM measure real runs;
//                        EML/SAML search on the sim-trained predictor and the
//                        winner is re-scored by a real run — the §IV-C
//                        protocol on live code)
//   fraction_profile     per-config real times along the fraction axis at the
//                        EM-real winner's thread/affinity setting
//   real_vs_simulated    the config the *simulator* picks vs the config the
//                        *real* matcher picks, both scored by real runs
//
// Run:  ./bench_main [--suite=smoke|full] [--out=BENCH_smoke.json]
//                    [--genome=human] [--scale=1024] [--iterations=60]
//                    [--repeats=1] [--seed=42]
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "automata/simd/simd_kernels.hpp"
#include "automata/simd_engine.hpp"
#include "core/hetopt.hpp"
#include "sim/multi.hpp"
#include "util/cli.hpp"
#include "util/cpu_features.hpp"
#include "util/fault.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

namespace {

using namespace hetopt;

/// CI gate: the fused kernel must beat the naive scanner by at least this
/// factor on the smoke input. Deliberately far below the expected speedup
/// (>=3x) so runner noise cannot flake the build.
constexpr double kKernelGuardMinSpeedup = 1.5;

/// Snap `config` onto the nearest point of `space` (axis-wise nearest value),
/// so a winner found on the paper's 240-thread grid can be executed on the
/// machine we actually have.
[[nodiscard]] opt::SystemConfig clamp_to_space(const opt::ConfigSpace& space,
                                               const opt::SystemConfig& config) {
  const auto nearest_int = [](const std::vector<int>& axis, int v) {
    int best = axis.front();
    for (const int a : axis) {
      if (std::abs(a - v) < std::abs(best - v)) best = a;
    }
    return best;
  };
  const auto nearest_double = [](const std::vector<double>& axis, double v) {
    double best = axis.front();
    for (const double a : axis) {
      if (std::abs(a - v) < std::abs(best - v)) best = a;
    }
    return best;
  };
  opt::SystemConfig c = config;
  c.host_threads = nearest_int(space.host_threads(), config.host_threads);
  c.device_threads = nearest_int(space.device_threads(), config.device_threads);
  c.host_percent = nearest_double(space.fractions(), config.host_percent);
  if (!space.contains(c)) c.host_affinity = space.host_affinities().front();
  if (!space.contains(c)) c.device_affinity = space.device_affinities().front();
  return c;
}

void write_config(util::JsonWriter& json, const opt::SystemConfig& c) {
  json.begin_object()
      .member("host_threads", c.host_threads)
      .member("host_affinity", parallel::to_string(c.host_affinity))
      .member("device_threads", c.device_threads)
      .member("device_affinity", parallel::to_string(c.device_affinity))
      .member("host_percent", c.host_percent)
      .member("engine", automata::to_string(c.engine))
      .member("schedule", parallel::to_string(c.schedule))
      .member("device_count", c.device_count)
      .end_object();
}

struct RealRow {
  std::string method;
  std::string strategy;
  std::string evaluator;
  std::size_t evaluations = 0;
  double search_wall_s = 0.0;
  double search_energy = 0.0;
  opt::SystemConfig config;
  core::RealMeasurement real;
  bool match_parity = false;
};

void write_real_row(util::JsonWriter& json, const RealRow& row) {
  json.begin_object()
      .member("method", row.method)
      .member("strategy", row.strategy)
      .member("evaluator", row.evaluator)
      .member("evaluations", row.evaluations)
      .member("search_wall_s", row.search_wall_s)
      .member("search_energy", row.search_energy)
      .member("real_time_s", row.real.seconds)
      .member("throughput_mb_s", row.real.throughput_mb_s)
      .member("matches", row.real.matches)
      .member("match_parity", row.match_parity)
      .key("winner");
  write_config(json, row.config);
  json.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const std::string suite = args.get("suite", std::string("smoke"));
  const std::string out_path = args.get("out", std::string("BENCH_") + suite + ".json");
  const std::string genome = args.get("genome", std::string("human"));
  const double scale = args.get("scale", suite == "full" ? 4096.0 : 1024.0);
  const std::int64_t iterations_raw =
      args.get("iterations", std::int64_t{suite == "full" ? 300 : 60});
  const std::int64_t repeats_raw = args.get("repeats", std::int64_t{1});
  if (iterations_raw < 1 || repeats_raw < 1 || !(scale > 0.0)) {
    std::cerr << "bench_main: --iterations and --repeats must be >= 1, --scale > 0\n";
    return 2;
  }
  const auto iterations = static_cast<std::size_t>(iterations_raw);
  const auto repeats = static_cast<std::size_t>(repeats_raw);
  const auto seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{42}));
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  const dna::GenomeCatalog catalog;
  const dna::GenomeInfo& info = catalog.get(genome);
  const core::Workload workload(info.name, info.size_mb);

  core::RealWorkloadOptions real_options;
  real_options.bytes_per_logical_mb = scale;
  real_options.repeats = repeats;
  const auto real_eval = std::make_shared<core::RealWorkloadEvaluator>(catalog, real_options);
  const core::RealWorkload& rw = real_eval->real(workload);
  const opt::ConfigSpace real_space = opt::ConfigSpace::real(hw);

  std::cout << "bench_main: suite=" << suite << " genome=" << genome << " ("
            << util::format_double(rw.physical_mb(), 2) << " MB physical, "
            << rw.sequential_matches() << " motif hits), space " << real_space.size()
            << " configs, " << hw << " hardware threads\n";

  util::JsonWriter json;
  json.begin_object()
      .member("schema", "hetopt-bench-v7")
      .member("suite", suite)
      .member("genome", genome)
      .member("logical_mb", workload.size_mb)
      .member("physical_mb", rw.physical_mb())
      .member("sequential_matches", rw.sequential_matches())
      .member("hardware_threads", static_cast<std::uint64_t>(hw))
      .member("real_space_size", real_space.size())
      .member("iterations", iterations)
      .member("seed", seed);

  // --- provenance -----------------------------------------------------------
  // Every BENCH_*.json records what silicon the numbers came from and which
  // ISA tier the SIMD engines actually ran — a row labeled "avx2" from a
  // forced-scalar run would be a lie, so the active level and the override
  // are part of the artifact (run_bench.sh validates this block).
  const char* const forced_env = std::getenv("HETOPT_FORCE_ISA");
  const util::IsaLevel active_isa = automata::simd::resolve_isa(std::nullopt);
  {
    json.key("provenance").begin_object();
    json.member("cpu_model", util::cpu_features().model_name);
    json.key("isa_detected").begin_array();
    for (const util::IsaLevel level : automata::simd::available_isas()) {
      json.value(util::to_string(level));
    }
    json.end_array();
    json.member("isa_active", util::to_string(active_isa));
    json.member("forced_isa", forced_env != nullptr ? forced_env : "");
    json.end_object();
    std::cout << "provenance: " << util::cpu_features().model_name << ", active ISA "
              << util::to_string(active_isa)
              << (forced_env != nullptr && forced_env[0] != '\0' ? " (forced)" : "")
              << "\n";
  }

  // --- scan_kernel ----------------------------------------------------------
  // The kernel ladder, all rows scanning the whole physical genome. The first
  // three rows are strictly single-threaded; multi_stream interleaves 8 chunk
  // scans on ONE worker (latency hiding, not parallelism); chunk_parallel
  // adds the pool on top. `speedup_fused_vs_naive` is the per-PR perf
  // trajectory number and feeds the CI guard.
  double fused_speedup = 0.0;
  bool kernel_parity = true;
  {
    const automata::CompiledDfa& kernel = rw.compiled();
    const std::string_view text = rw.text();
    const std::size_t kernel_reps = suite == "full" ? 5 : 3;
    struct KernelRow {
      const char* name = "";
      double seconds = 0.0;
      std::uint64_t matches = 0;
    };
    const auto timed = [&](const char* name, const std::function<std::uint64_t()>& fn) {
      KernelRow row;
      row.name = name;
      for (std::size_t rep = 0; rep < kernel_reps; ++rep) {
        util::Timer timer;
        const std::uint64_t matches = fn();
        const double seconds = timer.seconds();
        if (rep == 0 || seconds < row.seconds) row.seconds = seconds;
        row.matches = matches;
      }
      return row;
    };
    std::vector<KernelRow> kernel_rows;
    kernel_rows.push_back(timed("naive", [&] {
      return automata::scan_count_naive(rw.dfa(), text, rw.dfa().start()).match_count;
    }));
    kernel_rows.push_back(timed("fused", [&] {
      return kernel.count_fused(text, kernel.start()).match_count;
    }));
    kernel_rows.push_back(timed("paired", [&] {
      return kernel.count_paired(text, kernel.start()).match_count;
    }));
    parallel::ThreadPool single_pool(1);
    const automata::ParallelMatcher single_matcher(rw.dfa(), single_pool);
    kernel_rows.push_back(timed("multi_stream", [&] {
      return single_matcher.count(text, automata::CompiledDfa::kMaxStreams).match_count;
    }));
    parallel::ThreadPool wide_pool(hw);
    const automata::ParallelMatcher wide_matcher(rw.dfa(), wide_pool);
    kernel_rows.push_back(timed("chunk_parallel", [&] {
      return wide_matcher.count(text, hw * automata::CompiledDfa::kMaxStreams).match_count;
    }));

    const double naive_mb_s =
        kernel_rows.front().seconds > 0.0 ? rw.physical_mb() / kernel_rows.front().seconds
                                          : 0.0;
    json.key("scan_kernel").begin_object().key("rows").begin_array();
    for (const KernelRow& row : kernel_rows) {
      const double mb_s = row.seconds > 0.0 ? rw.physical_mb() / row.seconds : 0.0;
      const double speedup = naive_mb_s > 0.0 ? mb_s / naive_mb_s : 0.0;
      const bool parity = row.matches == rw.sequential_matches();
      kernel_parity = kernel_parity && parity;
      if (std::string_view(row.name) == "fused") fused_speedup = speedup;
      json.begin_object()
          .member("kernel", row.name)
          .member("seconds", row.seconds)
          .member("mb_s", mb_s)
          .member("matches", row.matches)
          .member("match_parity", parity)
          .member("speedup_vs_naive", speedup)
          .end_object();
      std::cout << "  scan_kernel " << row.name << ": "
                << util::format_double(mb_s, 1) << " MB/s ("
                << util::format_double(speedup, 2) << "x naive)\n";
    }
    json.end_array()
        .member("speedup_fused_vs_naive", fused_speedup)
        .member("guard_min_speedup", kKernelGuardMinSpeedup)
        .member("guard_ok", fused_speedup >= kKernelGuardMinSpeedup)
        .end_object();
  }

  // --- simd_matrix ----------------------------------------------------------
  // The ISA tier measured for real: every vector variant the host can run,
  // whole-genome MB/s against its scalar-engine baseline. Match parity per
  // row is a hard exit gate (a fast wrong kernel is worthless); the 2x-on-
  // AVX2 expectation is recorded with a warning, never gated — a noisy or
  // narrow runner must not flake CI over a throughput ratio.
  bool simd_parity = true;
  bool avx2_ge_2x_scalar = true;
  {
    const std::string_view text = rw.text();
    const std::size_t simd_reps = suite == "full" ? 5 : 3;
    const auto min_seconds = [&](const automata::MatchEngine& engine,
                                 std::uint64_t* matches) {
      double best = 0.0;
      for (std::size_t rep = 0; rep < simd_reps; ++rep) {
        util::Timer timer;
        *matches = engine.count(text);
        const double seconds = timer.seconds();
        if (rep == 0 || seconds < best) best = seconds;
      }
      return best;
    };
    struct Family {
      const char* name;
      const automata::MatchEngine* baseline;
    };
    const automata::BitapEngine scalar_bitap(real_options.motifs);
    const automata::MatchEngine& scalar_dfa =
        rw.engine(automata::EngineKind::kCompiledDfa);
    const std::vector<Family> families = {{"bitap", &scalar_bitap},
                                          {"prefilter", &scalar_dfa}};
    json.key("simd_matrix").begin_object().key("rows").begin_array();
    for (const Family& family : families) {
      std::uint64_t matches = 0;
      const double base_seconds = min_seconds(*family.baseline, &matches);
      const double base_mb_s =
          base_seconds > 0.0 ? rw.physical_mb() / base_seconds : 0.0;
      const bool base_parity = matches == rw.sequential_matches();
      simd_parity = simd_parity && base_parity;
      json.begin_object()
          .member("family", family.name)
          .member("isa", "baseline")
          .member("engine", automata::to_string(family.baseline->kind()))
          .member("seconds", base_seconds)
          .member("mb_s", base_mb_s)
          .member("matches", matches)
          .member("match_parity", base_parity)
          .member("speedup_vs_scalar_engine", 1.0)
          .end_object();
      std::cout << "  simd_matrix " << family.name << "/baseline ("
                << automata::to_string(family.baseline->kind())
                << "): " << util::format_double(base_mb_s, 1) << " MB/s\n";
      for (const util::IsaLevel isa : automata::simd::available_isas()) {
        std::unique_ptr<const automata::MatchEngine> engine;
        if (std::string_view(family.name) == "bitap") {
          engine = std::make_unique<automata::BitapSimdEngine>(real_options.motifs, isa);
        } else {
          engine = std::make_unique<automata::PrefilterDfaEngine>(real_options.motifs, isa);
        }
        const double seconds = min_seconds(*engine, &matches);
        const double mb_s = seconds > 0.0 ? rw.physical_mb() / seconds : 0.0;
        const double speedup = base_mb_s > 0.0 ? mb_s / base_mb_s : 0.0;
        const bool parity = matches == rw.sequential_matches();
        simd_parity = simd_parity && parity;
        if (std::string_view(family.name) == "bitap" &&
            isa == util::IsaLevel::kAvx2 && speedup < 2.0) {
          avx2_ge_2x_scalar = false;
        }
        json.begin_object()
            .member("family", family.name)
            .member("isa", util::to_string(isa))
            .member("engine", automata::to_string(engine->kind()))
            .member("seconds", seconds)
            .member("mb_s", mb_s)
            .member("matches", matches)
            .member("match_parity", parity)
            .member("speedup_vs_scalar_engine", speedup)
            .end_object();
        std::cout << "  simd_matrix " << family.name << "/" << util::to_string(isa)
                  << ": " << util::format_double(mb_s, 1) << " MB/s ("
                  << util::format_double(speedup, 2) << "x scalar engine)\n";
      }
    }
    json.end_array()
        .member("parity_ok", simd_parity)
        .member("avx2_ge_2x_scalar", avx2_ge_2x_scalar)
        .end_object();
  }

  // --- matcher_throughput ---------------------------------------------------
  {
    json.key("matcher_throughput").begin_array();
    parallel::ThreadPool pool(hw);
    const automata::ParallelMatcher matcher(rw.dfa(), pool);
    for (std::size_t chunks = 1; chunks <= 2 * hw; chunks *= 2) {
      util::Timer timer;
      const automata::ParallelScanStats stats = matcher.count(rw.text(), chunks);
      const double seconds = timer.seconds();
      json.begin_object()
          .member("chunks", chunks)
          .member("seconds", seconds)
          .member("mb_s", seconds > 0.0 ? rw.physical_mb() / seconds : 0.0)
          .member("matches", stats.match_count)
          .member("match_parity", stats.match_count == rw.sequential_matches())
          .end_object();
    }
    json.end_array();
  }

  // --- io_bound -------------------------------------------------------------
  // The out-of-core streaming path measured for real: the same genome scanned
  // (a) in memory, (b) cold through a bounded page cache whose resident
  // budget is at most 1/8 of the corpus (genuinely out-of-core), and
  // (c) warm with everything resident (the pure paging overhead). Match
  // parity on every row is a hard exit gate. The prefetch-depth sweep
  // compares consumer cold-stall counts against the depth-0 baseline —
  // depth >= 2 must stall strictly less (warn-not-gate on one hardware
  // thread, where compute cannot overlap IO); the warm row must hold >= 80%
  // of the in-memory throughput under the same escape.
  bool io_parity = true;
  bool io_warm_ok = true;
  bool io_stall_ok = true;
  {
    const std::string_view text = rw.text();
    const std::string corpus(text);
    const std::size_t io_reps = suite == "full" ? 5 : 3;
    const bool single_hw = hw == 1;
    parallel::ThreadPool pool(hw);
    const automata::ParallelMatcher matcher(rw.dfa(), pool);

    // Geometry: the budget covers the pool's workers plus prefetch headroom;
    // the page size is derived so the corpus is at least 8x the resident
    // bytes (recorded — tiny corpora can fall short of the ratio).
    const std::size_t resident = std::max<std::size_t>(hw + 4, 8);
    const std::size_t page_bytes =
        std::max<std::size_t>(std::size_t{4} * 1024, corpus.size() / (8 * resident));
    const std::size_t total_pages = (corpus.size() + page_bytes - 1) / page_bytes;
    const double corpus_over_budget =
        static_cast<double>(corpus.size()) /
        static_cast<double>(resident * page_bytes);
    const auto fresh_genome = [&](std::size_t budget) {
      dna::PagedGenomeOptions gopts;
      gopts.page_bytes = page_bytes;
      gopts.resident_pages = budget;
      return dna::PagedGenome(std::make_unique<dna::BufferPageSource>(corpus), gopts);
    };

    json.key("io_bound").begin_object();
    json.member("corpus_bytes", corpus.size())
        .member("page_bytes", page_bytes)
        .member("resident_pages", resident)
        .member("corpus_over_budget", corpus_over_budget)
        .member("budget_ratio_ge_8", corpus_over_budget >= 8.0)
        .member("single_hw_thread", single_hw);

    // (a) In-memory baseline: the PR-1 chunk-parallel scan of the same bytes
    // on the same pool — what the streaming path is allowed to cost against.
    double memory_seconds = 0.0;
    {
      std::uint64_t matches = 0;
      for (std::size_t rep = 0; rep < io_reps; ++rep) {
        util::Timer timer;
        matches = matcher.count(text, hw).match_count;
        const double s = timer.seconds();
        if (rep == 0 || s < memory_seconds) memory_seconds = s;
      }
      const bool parity = matches == rw.sequential_matches();
      io_parity = io_parity && parity;
      json.key("in_memory")
          .begin_object()
          .member("seconds", memory_seconds)
          .member("mb_s", memory_seconds > 0.0 ? rw.physical_mb() / memory_seconds : 0.0)
          .member("matches", matches)
          .member("match_parity", parity)
          .end_object();
    }
    const double memory_mb_s =
        memory_seconds > 0.0 ? rw.physical_mb() / memory_seconds : 0.0;

    // (b) Cold out-of-core scan: a fresh cache every repetition, the default
    // prefetch depth. This is the headline "corpus 8x the budget" row.
    {
      automata::PagedScanStats best;
      for (std::size_t rep = 0; rep < io_reps; ++rep) {
        dna::PagedGenome genome = fresh_genome(resident);
        const automata::PagedScanStats s = matcher.count_paged(genome);
        if (rep == 0 || s.seconds < best.seconds) best = s;
      }
      const bool parity = best.match_count == rw.sequential_matches();
      io_parity = io_parity && parity;
      json.key("cold")
          .begin_object()
          .member("seconds", best.seconds)
          .member("mb_s", best.seconds > 0.0 ? rw.physical_mb() / best.seconds : 0.0)
          .member("matches", best.match_count)
          .member("match_parity", parity)
          .member("prefetch_depth", best.prefetch_depth)
          .member("pages", best.pages)
          .member("loads", best.cache.loads)
          .member("evictions", best.cache.evictions)
          .member("cold_stalls", best.cache.cold_stalls)
          .member("cold_stall_seconds", best.cache.cold_stall_seconds)
          .member("bytes_read", best.cache.bytes_read)
          .member("pages_prefetched", best.prefetch.pages_prefetched)
          .member("overlap_efficiency", best.overlap_efficiency())
          .end_object();
      std::cout << "  io_bound cold: "
                << util::format_double(
                       best.seconds > 0.0 ? rw.physical_mb() / best.seconds : 0.0, 1)
                << " MB/s over " << best.pages << " pages ("
                << util::format_double(corpus_over_budget, 1)
                << "x the resident budget), overlap "
                << util::format_double(best.overlap_efficiency(), 3) << "\n";
    }

    // (c) Warm scan: everything resident after a priming pass, prefetch off —
    // the pure cost of chunk-wise pin/unpin against the in-memory baseline.
    {
      dna::PagedGenome genome = fresh_genome(total_pages);
      automata::PagedScanOptions warm_options;
      warm_options.prefetch_depth = 0;
      (void)matcher.count_paged(genome, warm_options);  // prime every page
      automata::PagedScanStats best;
      for (std::size_t rep = 0; rep < io_reps; ++rep) {
        const automata::PagedScanStats s = matcher.count_paged(genome, warm_options);
        if (rep == 0 || s.seconds < best.seconds) best = s;
      }
      const bool parity = best.match_count == rw.sequential_matches();
      io_parity = io_parity && parity;
      const double warm_mb_s = best.seconds > 0.0 ? rw.physical_mb() / best.seconds : 0.0;
      constexpr double kWarmTolerance = 0.80;
      io_warm_ok = single_hw || memory_mb_s <= 0.0 ||
                   warm_mb_s >= kWarmTolerance * memory_mb_s;
      if (!io_warm_ok) {
        std::cerr << "bench_main: io_bound warm throughput "
                  << util::format_double(warm_mb_s, 1) << " MB/s below "
                  << kWarmTolerance << "x the in-memory baseline ("
                  << util::format_double(memory_mb_s, 1) << " MB/s)\n";
      }
      json.key("warm")
          .begin_object()
          .member("seconds", best.seconds)
          .member("mb_s", warm_mb_s)
          .member("matches", best.match_count)
          .member("match_parity", parity)
          .member("loads", best.cache.loads)
          .member("hits", best.cache.hits)
          .member("warm_over_in_memory",
                  memory_mb_s > 0.0 ? warm_mb_s / memory_mb_s : 0.0)
          .member("tolerance", kWarmTolerance)
          .member("warm_ok", io_warm_ok)
          .end_object();
      std::cout << "  io_bound warm: " << util::format_double(warm_mb_s, 1)
                << " MB/s (" << util::format_double(
                       memory_mb_s > 0.0 ? warm_mb_s / memory_mb_s : 0.0, 2)
                << "x in-memory)\n";
    }

    // Prefetch-depth sweep on the cold 8x corpus: how much consumer stall
    // time the background reader absorbs, depth 0 as the no-pipeline
    // baseline.
    {
      std::uint64_t stalls_depth0 = 0;
      std::uint64_t stalls_depth2 = 0;
      json.key("prefetch_sweep").begin_array();
      for (const std::size_t depth : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                                      std::size_t{4}}) {
        automata::PagedScanStats best;
        for (std::size_t rep = 0; rep < io_reps; ++rep) {
          dna::PagedGenome genome = fresh_genome(resident);
          automata::PagedScanOptions options;
          options.prefetch_depth = depth;
          const automata::PagedScanStats s = matcher.count_paged(genome, options);
          if (rep == 0 || s.seconds < best.seconds) best = s;
        }
        const bool parity = best.match_count == rw.sequential_matches();
        io_parity = io_parity && parity;
        if (depth == 0) stalls_depth0 = best.cache.cold_stalls;
        if (depth == 2) stalls_depth2 = best.cache.cold_stalls;
        json.begin_object()
            .member("depth", depth)
            .member("effective_depth", best.prefetch_depth)
            .member("seconds", best.seconds)
            .member("mb_s", best.seconds > 0.0 ? rw.physical_mb() / best.seconds : 0.0)
            .member("matches", best.match_count)
            .member("match_parity", parity)
            .member("cold_stalls", best.cache.cold_stalls)
            .member("cold_stall_seconds", best.cache.cold_stall_seconds)
            .member("pages_prefetched", best.prefetch.pages_prefetched)
            .member("ring_full_waits", best.prefetch.ring_full_waits)
            .member("overlap_efficiency", best.overlap_efficiency())
            .end_object();
        std::cout << "  io_bound depth " << depth << ": "
                  << best.cache.cold_stalls << " cold stalls, overlap "
                  << util::format_double(best.overlap_efficiency(), 3) << "\n";
      }
      io_stall_ok = single_hw || stalls_depth2 < stalls_depth0;
      if (!io_stall_ok) {
        std::cerr << "bench_main: io_bound prefetch depth 2 did not reduce cold "
                     "stalls ("
                  << stalls_depth2 << " vs " << stalls_depth0 << " at depth 0)\n";
      }
      json.end_array()
          .member("depth0_cold_stalls", stalls_depth0)
          .member("depth2_cold_stalls", stalls_depth2)
          .member("stall_ok", io_stall_ok);
    }

    // Resident-budget sweep: throughput and eviction traffic as the cache
    // grows from the floor toward everything-resident.
    {
      std::vector<std::size_t> budgets{resident};
      if (2 * resident < total_pages) budgets.push_back(2 * resident);
      if (4 * resident < total_pages) budgets.push_back(4 * resident);
      budgets.push_back(total_pages);
      json.key("budget_sweep").begin_array();
      for (const std::size_t budget : budgets) {
        automata::PagedScanStats best;
        for (std::size_t rep = 0; rep < io_reps; ++rep) {
          dna::PagedGenome genome = fresh_genome(budget);
          const automata::PagedScanStats s = matcher.count_paged(genome);
          if (rep == 0 || s.seconds < best.seconds) best = s;
        }
        const bool parity = best.match_count == rw.sequential_matches();
        io_parity = io_parity && parity;
        json.begin_object()
            .member("resident_pages", budget)
            .member("seconds", best.seconds)
            .member("mb_s", best.seconds > 0.0 ? rw.physical_mb() / best.seconds : 0.0)
            .member("matches", best.match_count)
            .member("match_parity", parity)
            .member("loads", best.cache.loads)
            .member("evictions", best.cache.evictions)
            .end_object();
      }
      json.end_array();
    }
    json.end_object();
  }

  // --- table2_real ----------------------------------------------------------
  // The sim-trained predictor drives the ML presets; their winners are then
  // measured on the live matcher (what §IV-C calls "for fair comparison").
  std::cout << "training the predictor (" << (suite == "full" ? "paper" : "tiny")
            << " sweep)...\n";
  const sim::Machine machine = sim::emil_machine();
  const core::TrainingData data = core::generate_training_data(
      machine, catalog,
      suite == "full" ? core::TrainingSweepOptions::paper() : core::TrainingSweepOptions::tiny());
  core::PerformancePredictor predictor;
  predictor.train(data.host, data.device);
  const auto prediction = std::make_shared<core::PredictionEvaluator>(predictor, machine);

  std::vector<RealRow> rows;
  const auto run_preset = [&](const std::string& method, const char* strategy_name,
                              const std::shared_ptr<core::Evaluator>& evaluator) {
    core::TuningSession session(real_space);
    session.with_strategy(strategy_name)
        .with_evaluator(evaluator)
        .with_budget(strategy_name == std::string_view("exhaustive") ? real_space.size()
                                                                     : iterations + 1)
        .with_seed(seed);
    util::Timer timer;
    const core::SessionReport report = session.run(workload);
    RealRow row;
    row.method = method;
    row.strategy = report.strategy;
    row.evaluator = report.evaluator;
    row.evaluations = report.evaluations;
    row.search_wall_s = timer.seconds();
    row.search_energy = report.search_energy;
    row.config = report.config;
    row.real = real_eval->measure(report.config, workload);
    row.match_parity = row.real.matches == rw.sequential_matches();
    rows.push_back(row);
    std::cout << "  " << method << ": " << opt::to_string(row.config) << "  real "
              << util::format_double(row.real.seconds, 4) << " s, "
              << row.evaluations << " evals, search "
              << util::format_double(row.search_wall_s, 2) << " s\n";
  };
  run_preset("EM", "exhaustive", real_eval);
  run_preset("EML", "exhaustive", prediction);
  run_preset("SAM", "annealing", real_eval);
  run_preset("SAML", "annealing", prediction);

  json.key("table2_real").begin_array();
  for (const RealRow& row : rows) write_real_row(json, row);
  json.end_array();

  // --- engine_matrix --------------------------------------------------------
  // The match-engine axis, measured for real across contrasting motif-set
  // shapes: raw chunk-parallel MB/s per applicable engine x chunk count, and
  // the engine each Table II preset's tuner picks when the axis is enabled.
  // The ML presets search on the sim-trained predictor, which has seen no
  // engine variation, so their winner engine reflects prediction ties — the
  // honest statement of what EML/SAML can know without engine-varied
  // training data.
  {
    struct MotifSet {
      const char* name;
      std::vector<std::string> motifs;
    };
    const std::vector<MotifSet> motif_sets = {
        {"default_mixed", {"TATAWAW", "GGGCGG"}},
        {"few_long_literals", {"GATTACAGATTACA", "CCCGGGTTTAAACC"}},
        {"many_short_iupac",
         {"TATAWAW", "GGNCC", "CCWGG", "RRYYRR", "ACGTN", "TTSAA"}},
        {"many_long_literals",
         {"GATTACAGATTA", "CCCGGGTTTAAA", "ACGTACGTACGT", "TTTTGGGGCCCC",
          "AGAGAGAGAGAG", "CTCTCTCTCTCT"}},  // 72 summed bits: no bitap
    };
    const std::size_t engine_reps = suite == "full" ? 3 : 2;
    std::vector<std::size_t> chunk_axis{1};
    if (hw > 1) chunk_axis.push_back(hw);
    chunk_axis.push_back(2 * hw);
    // A deliberately small thread/fraction grid so the exhaustive preset
    // stays cheap: the interesting axis here is the engine.
    const std::vector<int> host_axis = hw > 1 ? std::vector<int>{1, static_cast<int>(hw)}
                                              : std::vector<int>{1};
    const std::vector<int> device_axis = host_axis;

    json.key("engine_matrix").begin_array();
    for (const MotifSet& set : motif_sets) {
      core::RealWorkloadOptions set_options;
      set_options.motifs = set.motifs;
      set_options.bytes_per_logical_mb = scale;
      set_options.repeats = repeats;
      const auto set_eval =
          std::make_shared<core::RealWorkloadEvaluator>(catalog, set_options);
      const core::RealWorkload& set_rw = set_eval->real(workload);
      const std::vector<automata::EngineKind> available = set_rw.engines();

      json.begin_object().member("motif_set", set.name).key("motifs").begin_array();
      for (const std::string& m : set.motifs) json.value(m);
      json.end_array().key("available_engines").begin_array();
      for (const automata::EngineKind kind : available) {
        json.value(automata::to_string(kind));
      }
      json.end_array().key("skipped").begin_array();
      for (const automata::EngineKind kind : automata::kAllEngineKinds) {
        if (set_rw.find_engine(kind) != nullptr) continue;
        json.begin_object()
            .member("engine", automata::to_string(kind))
            .member("reason", set_rw.engine_gap(kind))
            .end_object();
      }
      json.end_array();

      // Raw chunk-parallel throughput per engine x chunk count.
      parallel::ThreadPool pool(hw);
      json.key("throughput").begin_array();
      for (const automata::EngineKind kind : available) {
        const automata::ParallelMatcher matcher(set_rw.engine(kind), pool);
        double best_mb_s = 0.0;
        for (const std::size_t chunks : chunk_axis) {
          double seconds = 0.0;
          std::uint64_t matches = 0;
          for (std::size_t rep = 0; rep < engine_reps; ++rep) {
            util::Timer timer;
            matches = matcher.count(set_rw.text(), chunks).match_count;
            const double s = timer.seconds();
            if (rep == 0 || s < seconds) seconds = s;
          }
          const double mb_s = seconds > 0.0 ? set_rw.physical_mb() / seconds : 0.0;
          best_mb_s = std::max(best_mb_s, mb_s);
          json.begin_object()
              .member("engine", automata::to_string(kind))
              .member("chunks", chunks)
              .member("seconds", seconds)
              .member("mb_s", mb_s)
              .member("matches", matches)
              .member("match_parity", matches == set_rw.sequential_matches())
              .end_object();
        }
        std::cout << "  engine_matrix " << set.name << " " << automata::to_string(kind)
                  << ": best " << util::format_double(best_mb_s, 1) << " MB/s\n";
      }
      json.end_array();

      // Tuned-winner engine per Table II preset over the engine-enabled grid.
      const opt::ConfigSpace engine_space(
          host_axis,
          {parallel::HostAffinity::kNone},
          device_axis,
          {parallel::DeviceAffinity::kBalanced},
          {0.0, 50.0, 100.0},
          available);
      json.key("tuned").begin_array();
      const auto tune_preset = [&](const std::string& method, const char* strategy_name,
                                   const std::shared_ptr<core::Evaluator>& evaluator) {
        core::TuningSession session(engine_space);
        session.with_strategy(strategy_name)
            .with_evaluator(evaluator)
            .with_budget(strategy_name == std::string_view("exhaustive")
                             ? engine_space.size()
                             : iterations + 1)
            .with_seed(seed);
        const core::SessionReport report = session.run(workload);
        const core::RealMeasurement real = set_eval->measure(report.config, workload);
        json.begin_object()
            .member("method", method)
            .member("engine", automata::to_string(report.config.engine))
            .member("evaluations", report.evaluations)
            .member("real_time_s", real.seconds)
            .member("throughput_mb_s", real.throughput_mb_s)
            .member("match_parity", real.matches == set_rw.sequential_matches())
            .key("winner");
        write_config(json, report.config);
        json.end_object();
        std::cout << "  engine_matrix " << set.name << " " << method << " -> "
                  << automata::to_string(report.config.engine) << " ("
                  << opt::to_string(report.config) << ")\n";
      };
      tune_preset("EM", "exhaustive", set_eval);
      tune_preset("EML", "exhaustive", prediction);
      tune_preset("SAM", "annealing", set_eval);
      tune_preset("SAML", "annealing", prediction);
      json.end_array().end_object();
    }
    json.end_array();
  }

  // --- schedule_matrix ------------------------------------------------------
  // The work-distribution axis, measured for real: raw executor throughput
  // per schedule policy x fraction x chunk count, a skew block where the
  // configured fraction is deliberately wrong (static wastes a pool; the
  // shared-queue schedules recover it), and the policy each Table II preset
  // tunes to when the axis is enabled.
  bool schedule_parity = true;
  {
    const std::size_t sched_reps = suite == "full" ? 3 : 2;
    core::HeterogeneousExecutor executor(
        rw.engine(automata::EngineKind::kCompiledDfa), hw, hw);
    const auto best_run = [&](double fraction, std::size_t chunks_per_side,
                              parallel::SchedulePolicy policy, std::size_t reps) {
      core::ExecutionReport best;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        const core::ExecutionReport r = executor.run(rw.text(), fraction, chunks_per_side,
                                                     chunks_per_side, policy);
        if (rep == 0 || r.total_seconds < best.total_seconds) best = r;
      }
      return best;
    };
    const auto write_schedule_row = [&](const core::ExecutionReport& r,
                                        std::size_t chunks_per_side) {
      const double mb_s =
          r.total_seconds > 0.0 ? rw.physical_mb() / r.total_seconds : 0.0;
      const bool parity = r.total_matches() == rw.sequential_matches();
      schedule_parity = schedule_parity && parity;
      json.begin_object()
          .member("schedule", parallel::to_string(r.schedule))
          .member("host_percent", r.configured_host_percent)
          .member("chunks_per_side", chunks_per_side)
          .member("seconds", r.total_seconds)
          .member("mb_s", mb_s)
          .member("matches", r.total_matches())
          .member("match_parity", parity)
          .member("realized_host_percent", r.realized_host_percent)
          .member("host_steals", r.host_steals)
          .member("device_steals", r.device_steals)
          .member("imbalance", r.imbalance)
          .end_object();
      return mb_s;
    };

    json.key("schedule_matrix").begin_object();
    json.key("throughput").begin_array();
    for (const parallel::SchedulePolicy policy : parallel::kAllSchedulePolicies) {
      double best_mb_s = 0.0;
      for (const double fraction : {0.0, 50.0, 100.0}) {
        for (const std::size_t mult : {std::size_t{1}, std::size_t{4}}) {
          const core::ExecutionReport r =
              best_run(fraction, hw * mult, policy, sched_reps);
          best_mb_s = std::max(best_mb_s, write_schedule_row(r, hw * mult));
        }
      }
      std::cout << "  schedule_matrix " << parallel::to_string(policy) << ": best "
                << util::format_double(best_mb_s, 1) << " MB/s\n";
    }
    json.end_array();

    // Skew block: 90% of the bytes configured onto the host while a
    // same-size device pool idles. Static pays the full imbalance; every
    // demand-driven policy should at least match it (tolerance absorbs
    // wall-clock noise on small machines, where all policies tie).
    {
      constexpr double kSkewFraction = 90.0;
      // On multi-core machines the demand-driven schedules clearly beat a
      // skewed static split, and the tolerance only absorbs runner noise.
      // On a single hardware thread there is no parallelism to recover —
      // every policy does the same total work and only queue overhead
      // separates them — so the comparison carries no signal: the rows are
      // still emitted, but the flags pass trivially and say so via
      // `single_hw_thread`.
      constexpr double kSkewTolerance = 0.90;
      const bool single_hw = hw == 1;
      const std::size_t skew_reps = std::max<std::size_t>(5, sched_reps);
      double mb_s_by_policy[parallel::kSchedulePolicyCount] = {};
      json.key("skew").begin_object();
      json.member("host_percent", kSkewFraction).key("rows").begin_array();
      for (const parallel::SchedulePolicy policy : parallel::kAllSchedulePolicies) {
        const core::ExecutionReport r =
            best_run(kSkewFraction, hw * 8, policy, skew_reps);
        mb_s_by_policy[static_cast<std::size_t>(policy)] =
            write_schedule_row(r, hw * 8);
        std::cout << "  schedule_matrix skew " << r.to_string() << "\n";
      }
      const double static_mb_s =
          mb_s_by_policy[static_cast<std::size_t>(parallel::SchedulePolicy::kStatic)];
      const auto ge_static = [&](parallel::SchedulePolicy p) {
        if (single_hw) return true;  // no parallelism to compare — see above
        const bool ok = mb_s_by_policy[static_cast<std::size_t>(p)] >=
                        kSkewTolerance * static_mb_s;
        // Recorded, not a hard CI gate like match parity: these are
        // wall-clock comparisons on whatever hardware runs the bench, and
        // failing the build on runner noise would teach people to ignore
        // it. A false flag in the artifact is the loud signal.
        if (!ok) {
          std::cerr << "bench_main: WARNING: " << parallel::to_string(p)
                    << " fell below " << kSkewTolerance
                    << "x static on the skewed workload\n";
        }
        return ok;
      };
      json.end_array()
          .member("tolerance", kSkewTolerance)
          .member("single_hw_thread", single_hw)
          .member("dynamic_ge_static", ge_static(parallel::SchedulePolicy::kDynamic))
          .member("guided_ge_static", ge_static(parallel::SchedulePolicy::kGuided))
          .member("adaptive_ge_static", ge_static(parallel::SchedulePolicy::kAdaptive))
          .end_object();
    }

    // Tuned-winner policy per Table II preset over a schedule-enabled grid
    // (small thread/fraction axes — the interesting axis is the schedule).
    // The ML presets search the sim-trained predictor, which has seen no
    // schedule variation, so their pick only reflects prediction ties.
    {
      const std::vector<int> threads_axis =
          hw > 1 ? std::vector<int>{1, static_cast<int>(hw)} : std::vector<int>{1};
      const opt::ConfigSpace sched_space(
          threads_axis, {parallel::HostAffinity::kNone}, threads_axis,
          {parallel::DeviceAffinity::kBalanced}, {0.0, 50.0, 100.0},
          {automata::EngineKind::kCompiledDfa},
          {parallel::SchedulePolicy::kStatic, parallel::SchedulePolicy::kDynamic,
           parallel::SchedulePolicy::kGuided, parallel::SchedulePolicy::kAdaptive});
      json.key("tuned").begin_array();
      const auto tune_preset = [&](const std::string& method, const char* strategy_name,
                                   const std::shared_ptr<core::Evaluator>& evaluator) {
        core::TuningSession session(sched_space);
        session.with_strategy(strategy_name)
            .with_evaluator(evaluator)
            .with_budget(strategy_name == std::string_view("exhaustive")
                             ? sched_space.size()
                             : iterations + 1)
            .with_seed(seed);
        const core::SessionReport report = session.run(workload);
        const core::RealMeasurement real = real_eval->measure(report.config, workload);
        const bool parity = real.matches == rw.sequential_matches();
        schedule_parity = schedule_parity && parity;
        json.begin_object()
            .member("method", method)
            .member("schedule", parallel::to_string(report.config.schedule))
            .member("evaluations", report.evaluations)
            .member("real_time_s", real.seconds)
            .member("throughput_mb_s", real.throughput_mb_s)
            .member("realized_host_percent", real.realized_host_percent)
            .member("match_parity", parity)
            .key("winner");
        write_config(json, report.config);
        json.end_object();
        std::cout << "  schedule_matrix " << method << " -> "
                  << parallel::to_string(report.config.schedule) << " ("
                  << opt::to_string(report.config) << ")\n";
      };
      tune_preset("EM", "exhaustive", real_eval);
      tune_preset("EML", "exhaustive", prediction);
      tune_preset("SAM", "annealing", real_eval);
      tune_preset("SAML", "annealing", prediction);
      json.end_array();
    }
    json.end_object();
  }

  // --- device_matrix --------------------------------------------------------
  // The fleet axis measured for real. The profile block executes the EM-real
  // winner with 1..4 emulated-device pools: the device remainder of the
  // configured fraction is water-filled across the K devices by
  // sim::MultiDeviceMachine::distribute (so identical devices finish
  // together), and the rows record both the configured and the realized
  // per-pool shares plus the steal traffic — the bench-side face of the
  // distribute differential oracle. The tuned block then lets each Table II
  // preset pick the fleet size on a device-count-enabled grid; the ML
  // presets price fleets through the predictor's water-filled fleet
  // extension of Eq. 2.
  bool device_parity = true;
  {
    json.key("device_matrix").begin_object();
    json.key("profile").begin_array();
    for (int devices = 1; devices <= 4; ++devices) {
      opt::SystemConfig c = rows.front().config;
      c.device_count = devices;
      const core::RealMeasurement m = real_eval->measure(c, workload);
      const bool parity = m.matches == rw.sequential_matches();
      device_parity = device_parity && parity;
      const sim::ShareVector shares = sim::emil_with_phis(static_cast<std::size_t>(devices))
                                          .distribute(rw.physical_mb(), c.host_percent,
                                                      c.host_threads, c.host_affinity,
                                                      c.device_threads, c.device_affinity);
      json.begin_object()
          .member("device_count", devices)
          .member("pool_count", m.pool_count)
          .member("seconds", m.seconds)
          .member("throughput_mb_s", m.throughput_mb_s)
          .member("matches", m.matches)
          .member("match_parity", parity)
          .member("imbalance", m.imbalance)
          .member("sim_makespan_s", shares.makespan_s);
      json.key("configured_percents").begin_array();
      for (const double s : m.configured_percents) json.value(s);
      json.end_array().key("realized_percents").begin_array();
      for (const double s : m.realized_percents) json.value(s);
      json.end_array().key("pool_steals").begin_array();
      for (const std::uint64_t s : m.pool_steals) json.value(s);
      json.end_array().end_object();
      std::cout << "  device_matrix " << devices << " device"
                << (devices == 1 ? "" : "s") << ": "
                << util::format_double(m.throughput_mb_s, 1) << " MB/s, host "
                << util::format_double(m.realized_percents.empty()
                                           ? 0.0
                                           : m.realized_percents.front(),
                                       1)
                << "% realized (configured "
                << util::format_double(m.configured_percents.empty()
                                           ? 0.0
                                           : m.configured_percents.front(),
                                       1)
                << "%)\n";
    }
    json.end_array();

    // Tuned-winner fleet size per Table II preset over a device-count-enabled
    // grid (small thread/fraction axes — the interesting axis is the fleet).
    {
      const std::vector<int> threads_axis =
          hw > 1 ? std::vector<int>{1, static_cast<int>(hw)} : std::vector<int>{1};
      const opt::ConfigSpace device_space =
          opt::ConfigSpace(threads_axis, {parallel::HostAffinity::kNone}, threads_axis,
                           {parallel::DeviceAffinity::kBalanced}, {0.0, 50.0, 100.0},
                           {automata::EngineKind::kCompiledDfa})
              .with_device_counts({1, 2, 3, 4});
      json.key("tuned").begin_array();
      const auto tune_preset = [&](const std::string& method, const char* strategy_name,
                                   const std::shared_ptr<core::Evaluator>& evaluator) {
        core::TuningSession session(device_space);
        session.with_strategy(strategy_name)
            .with_evaluator(evaluator)
            .with_budget(strategy_name == std::string_view("exhaustive")
                             ? device_space.size()
                             : iterations + 1)
            .with_seed(seed);
        const core::SessionReport report = session.run(workload);
        const core::RealMeasurement real = real_eval->measure(report.config, workload);
        const bool parity = real.matches == rw.sequential_matches();
        device_parity = device_parity && parity;
        json.begin_object()
            .member("method", method)
            .member("device_count", report.config.device_count)
            .member("evaluations", report.evaluations)
            .member("real_time_s", real.seconds)
            .member("throughput_mb_s", real.throughput_mb_s)
            .member("match_parity", parity)
            .key("winner");
        write_config(json, report.config);
        json.end_object();
        std::cout << "  device_matrix " << method << " -> "
                  << report.config.device_count << " device"
                  << (report.config.device_count == 1 ? "" : "s") << " ("
                  << opt::to_string(report.config) << ")\n";
      };
      tune_preset("EM", "exhaustive", real_eval);
      tune_preset("EML", "exhaustive", prediction);
      tune_preset("SAM", "annealing", real_eval);
      tune_preset("SAML", "annealing", prediction);
      json.end_array();
    }
    json.end_object();
  }

  // --- fault_matrix ---------------------------------------------------------
  // The fault-tolerant runtime measured for real. The overhead block runs the
  // same 2-pool split plain and probe-armed (probe forces the watchdog +
  // per-chunk recovery machinery on while injecting nothing), so
  // overhead_percent is the price of the recovery path; it is expected to
  // stay <= 3% and is recorded with a flag (a warning, not a hard gate —
  // wall-clock on arbitrary runners). The recovery block executes planned
  // faults (pool death/stall, a permanently throwing chunk, a slowed chunk)
  // across fleet sizes and schedules: every row must keep byte-exact match
  // parity — that IS a hard CI gate, faults are deterministic — and records
  // the failure telemetry. The self_healing block drives the evaluator's
  // retry/backoff path through a transient and a hopeless measure-fail plan.
  bool fault_parity = true;
  {
    json.key("fault_matrix").begin_object();
    {
      const std::size_t overhead_reps = suite == "full" ? 9 : 5;
      std::vector<core::PoolSpec> specs(2);
      specs[0].threads = hw;
      specs[1].threads = hw;
      core::HeterogeneousExecutor executor(
          rw.engine(automata::EngineKind::kCompiledDfa), specs);
      const std::vector<double> shares{50.0, 50.0};
      const auto best_seconds = [&](bool probe) {
        double best = 0.0;
        for (std::size_t rep = 0; rep < overhead_reps; ++rep) {
          std::unique_ptr<util::FaultInjector> injector;
          if (probe) {
            injector =
                std::make_unique<util::FaultInjector>(util::FaultPlan::parse("probe"));
          }
          const core::ExecutionReport r =
              executor.run_fleet(rw.text(), shares, parallel::SchedulePolicy::kAdaptive);
          fault_parity = fault_parity && r.total_matches() == rw.sequential_matches();
          if (rep == 0 || r.total_seconds < best) best = r.total_seconds;
        }
        return best;
      };
      const double plain_s = best_seconds(false);
      const double probe_s = best_seconds(true);
      const double overhead_percent =
          plain_s > 0.0 ? 100.0 * (probe_s - plain_s) / plain_s : 0.0;
      constexpr double kOverheadGuardPercent = 3.0;
      const bool overhead_ok = overhead_percent <= kOverheadGuardPercent;
      if (!overhead_ok) {
        std::cerr << "bench_main: WARNING: recovery-path zero-fault overhead "
                  << util::format_double(overhead_percent, 2) << "% exceeds "
                  << util::format_double(kOverheadGuardPercent, 1) << "%\n";
      }
      json.key("overhead")
          .begin_object()
          .member("plain_seconds", plain_s)
          .member("probe_seconds", probe_s)
          .member("overhead_percent", overhead_percent)
          .member("guard_max_percent", kOverheadGuardPercent)
          .member("overhead_ok", overhead_ok)
          .end_object();
      std::cout << "  fault_matrix overhead: plain "
                << util::format_double(plain_s, 4) << " s, probe-armed "
                << util::format_double(probe_s, 4) << " s ("
                << util::format_double(overhead_percent, 2) << "%)\n";
    }
    {
      json.key("recovery").begin_array();
      for (const std::size_t pools : {std::size_t{2}, std::size_t{4}}) {
        std::vector<core::PoolSpec> specs(pools);
        for (std::size_t i = 0; i < pools; ++i) {
          specs[i].threads = 1 + (i % 3);
          specs[i].chunks = 4;
        }
        core::HeterogeneousExecutor executor(
            rw.engine(automata::EngineKind::kCompiledDfa), specs);
        executor.set_recovery({0.02, 3});  // fast watchdog for the stall rows
        const std::vector<double> shares(pools, 100.0 / static_cast<double>(pools));
        const std::string last = std::to_string(pools - 1);
        const std::vector<std::string> plans = {
            "pool-death:pool=" + last,
            "pool-stall:pool=" + last,
            "chunk-throw:chunk=0,times=99",
            "chunk-slow:chunk=0,factor=3",
        };
        for (const parallel::SchedulePolicy policy : parallel::kAllSchedulePolicies) {
          for (const std::string& plan : plans) {
            const util::FaultInjector injector(util::FaultPlan::parse(plan));
            const core::ExecutionReport r = executor.run_fleet(rw.text(), shares, policy);
            const bool parity = r.total_matches() == rw.sequential_matches();
            fault_parity = fault_parity && parity;
            json.begin_object()
                .member("plan", plan)
                .member("pools", pools)
                .member("schedule", parallel::to_string(policy))
                .member("seconds", r.total_seconds)
                .member("matches", r.total_matches())
                .member("match_parity", parity)
                .member("requeued_chunks", r.requeued_chunks)
                .member("chunk_retries", r.chunk_retries)
                .member("degraded", r.degraded)
                .member("injected", injector.injected())
                .key("failed_pools")
                .begin_array();
            for (const std::size_t p : r.failed_pools) {
              json.value(static_cast<std::uint64_t>(p));
            }
            json.end_array().end_object();
          }
        }
      }
      json.end_array();
      std::cout << "  fault_matrix recovery: 32 fault rows, parity "
                << (fault_parity ? "ok" : "FAILED") << "\n";
    }
    {
      const core::RealWorkloadEvaluator healer(catalog, real_options);
      const opt::SystemConfig config = rows.front().config;
      bool transient_valid = false;
      std::uint64_t transient_failures = 0;
      bool transient_parity = false;
      {
        const util::FaultInjector injector(
            util::FaultPlan::parse("measure-fail:after=0,times=2", seed));
        const core::RealMeasurement m = healer.measure(config, workload);
        transient_valid = m.valid;
        transient_failures = m.measure_failures;
        transient_parity = m.matches == rw.sequential_matches();
        fault_parity = fault_parity && transient_parity;
      }
      bool hopeless_valid = true;
      {
        const util::FaultInjector injector(
            util::FaultPlan::parse("measure-fail:after=0,times=1000", seed));
        const core::RealMeasurement m = healer.measure(config, workload);
        hopeless_valid = m.valid;  // must come back false, not throw
      }
      json.key("self_healing")
          .begin_object()
          .member("transient_valid", transient_valid)
          .member("transient_failures", transient_failures)
          .member("transient_match_parity", transient_parity)
          .member("hopeless_valid", hopeless_valid)
          .member("invalid_measurements", healer.invalid_measurements())
          .end_object();
      std::cout << "  fault_matrix self_healing: transient "
                << (transient_valid ? "healed" : "FAILED") << " after "
                << transient_failures << " failures, hopeless "
                << (hopeless_valid ? "UNEXPECTEDLY VALID" : "marked invalid") << "\n";
    }
    json.end_object();
  }

  // --- fraction_profile -----------------------------------------------------
  // Per-config real times along the fraction axis at the EM-real winner's
  // thread/affinity setting (the live-code analogue of Fig. 2).
  {
    json.key("fraction_profile").begin_array();
    for (const double fraction : real_space.fractions()) {
      opt::SystemConfig c = rows.front().config;
      c.host_percent = fraction;
      const core::RealMeasurement m = real_eval->measure(c, workload);
      json.begin_object()
          .member("host_percent", fraction)
          .member("seconds", m.seconds)
          .member("throughput_mb_s", m.throughput_mb_s)
          .member("matches", m.matches)
          .end_object();
    }
    json.end_array();
  }

  // --- real_vs_simulated ----------------------------------------------------
  // What the simulator would pick (EM over the paper space) vs what tuning
  // the live code picked, both executed for real. The simulated winner's
  // 48/240-thread configuration is snapped onto the real space first.
  {
    const auto em_sim = core::run_em(opt::ConfigSpace::paper(), machine, workload);
    const opt::SystemConfig clamped = clamp_to_space(real_space, em_sim.config);
    const core::RealMeasurement sim_on_real = real_eval->measure(clamped, workload);
    // The EM-real winner was already measured for its table2_real row; reuse
    // that run so the JSON reports one consistent number per configuration.
    const core::RealMeasurement& real_on_real = rows.front().real;

    json.key("real_vs_simulated").begin_object();
    json.key("simulated_em").begin_object().member("sim_time_s", em_sim.measured_time);
    json.key("config");
    write_config(json, em_sim.config);
    json.key("clamped_config");
    write_config(json, clamped);
    json.member("real_time_s", sim_on_real.seconds).end_object();
    json.key("real_em").begin_object();
    json.key("config");
    write_config(json, rows.front().config);
    json.member("real_time_s", real_on_real.seconds).end_object();
    json.member("sim_choice_slowdown",
                real_on_real.seconds > 0.0 ? sim_on_real.seconds / real_on_real.seconds : 0.0);
    json.end_object();
    std::cout << "real-vs-simulated: sim EM choice " << opt::to_string(em_sim.config)
              << " -> " << util::format_double(sim_on_real.seconds, 4)
              << " s real; live EM choice -> "
              << util::format_double(real_on_real.seconds, 4) << " s real\n";
  }

  json.end_object();

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "bench_main: cannot open " << out_path << " for writing\n";
    return 1;
  }
  out << json.str() << '\n';
  std::cout << "wrote " << out_path << " (" << json.str().size() << " bytes)\n";

  // Hard gate for CI: every real measurement must have reproduced the
  // sequential match count exactly.
  for (const RealRow& row : rows) {
    if (!row.match_parity) {
      std::cerr << "bench_main: MATCH MISMATCH for " << row.method << "\n";
      return 1;
    }
  }
  // Kernel gates: every scan_kernel row must reproduce the sequential match
  // count, and the fused kernel must not regress below the guard.
  if (!kernel_parity) {
    std::cerr << "bench_main: scan_kernel MATCH MISMATCH\n";
    return 1;
  }
  // Every schedule-matrix row — all four policies across fractions, chunk
  // counts, the skew block and the tuned winners — must be byte-exact too.
  if (!schedule_parity) {
    std::cerr << "bench_main: schedule_matrix MATCH MISMATCH\n";
    return 1;
  }
  // Every device-matrix row — 1..4 emulated-device fleets and the tuned
  // fleet-size winners — must reproduce the sequential count too: N-way
  // parity is the whole point of the fleet runtime.
  if (!device_parity) {
    std::cerr << "bench_main: device_matrix MATCH MISMATCH\n";
    return 1;
  }
  // Every fault-matrix row scans under a deterministic fault plan; recovery
  // must reproduce the sequential count exactly, no wall-clock excuse.
  if (!fault_parity) {
    std::cerr << "bench_main: fault_matrix MATCH MISMATCH\n";
    return 1;
  }
  // Every simd-matrix row must reproduce the sequential count — the hard
  // cross-ISA gate. The AVX2 throughput expectation is a warning only.
  if (!simd_parity) {
    std::cerr << "bench_main: simd_matrix MATCH MISMATCH\n";
    return 1;
  }
  // Every io_bound row — in-memory baseline, cold 8x-budget stream, warm
  // cache, prefetch and budget sweeps — must be byte-exact: the streaming
  // path exists to make out-of-core scans indistinguishable from in-memory
  // ones.
  if (!io_parity) {
    std::cerr << "bench_main: io_bound MATCH MISMATCH\n";
    return 1;
  }
  // The throughput and overlap expectations hold whenever compute can
  // actually overlap IO; on a single hardware thread they are recorded with
  // a warning instead (io_warm_ok/io_stall_ok are forced true there).
  if (!io_warm_ok) {
    std::cerr << "bench_main: io_bound warm scan below tolerance\n";
    return 1;
  }
  if (!io_stall_ok) {
    std::cerr << "bench_main: io_bound prefetch failed to reduce cold stalls\n";
    return 1;
  }
  if (!avx2_ge_2x_scalar) {
    std::cerr << "bench_main: WARNING: avx2 bitap-simd below 2x the scalar "
                 "bitap engine on this host (recorded, not gated)\n";
  }
  if (fused_speedup < kKernelGuardMinSpeedup) {
    std::cerr << "bench_main: fused kernel only " << util::format_double(fused_speedup, 2)
              << "x naive (guard " << util::format_double(kKernelGuardMinSpeedup, 2)
              << "x)\n";
    return 1;
  }
  return 0;
}
