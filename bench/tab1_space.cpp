// Table I: the configuration parameter space, plus the Eq. 1 space size the
// enumeration approach must cover (19 926 experiments).
#include <iostream>

#include "bench/common.hpp"
#include "util/strings.hpp"

int main() {
  using namespace hetopt;
  const bench::Env env;

  util::Table table("Table I: system configuration parameters (paper Table I)");
  table.header({"Parameter", "Host", "Device"});

  const auto join_ints = [](const std::vector<int>& v) {
    std::vector<std::string> parts;
    parts.reserve(v.size());
    for (int x : v) parts.push_back(std::to_string(x));
    return util::join(parts, ", ");
  };
  table.row({"Threads", join_ints(env.space.host_threads()),
             join_ints(env.space.device_threads())});
  table.row({"Affinity", "none, scatter, compact", "balanced, scatter, compact"});
  table.row({"Workload fraction", "0..100 in steps of 2.5",
             "100 - host fraction"});

  table.note("|space| = 6 x 3 x 9 x 3 x 41 = " + std::to_string(env.space.size()) +
             " configurations (the paper's 19926 enumeration experiments)");
  table.print(std::cout);
  return 0;
}
