// ABLATION A (not in the paper): simulated annealing vs uniform random
// search vs restarted hill climbing, same measurement objective, same
// evaluation budgets. Justifies the paper's choice of SA for this space.
#include <iostream>

#include "bench/common.hpp"
#include "opt/baselines.hpp"
#include "opt/genetic.hpp"

int main() {
  using namespace hetopt;
  const bench::Env env;
  const core::Workload human("human", 3170.0);
  const auto em = core::run_em(env.space, env.machine, human);
  const auto objective = core::measurement_objective(env.machine, human);
  constexpr int kSeeds = 7;

  util::Table table("Ablation A: search strategies on the 19926-point space (human)");
  table.header({"Budget", "SA %diff vs EM", "GA %diff", "RandomSearch %diff",
                "HillClimb %diff"});
  for (const std::size_t budget : {250u, 500u, 1000u, 2000u}) {
    double sa_sum = 0.0;
    double ga_sum = 0.0;
    double rs_sum = 0.0;
    double hc_sum = 0.0;
    for (int seed = 0; seed < kSeeds; ++seed) {
      const auto u = static_cast<std::uint64_t>(seed);
      sa_sum += core::run_sam(env.space, env.machine, human,
                              core::sa_params_for_iterations(budget, u * 71 + 1))
                    .measured_time;
      opt::GaParams ga;
      ga.max_evaluations = budget;
      ga.seed = u * 71 + 4;
      ga_sum += opt::genetic_algorithm(env.space, objective, ga).best_energy;
      rs_sum += opt::random_search(env.space, objective, budget, u * 71 + 2).best_energy;
      hc_sum += opt::hill_climbing(env.space, objective, budget, u * 71 + 3).best_energy;
    }
    const auto pct = [&](double sum) {
      return bench::num(100.0 * (sum / kSeeds - em.measured_time) / em.measured_time, 2);
    };
    table.row({std::to_string(budget), pct(sa_sum), pct(ga_sum), pct(rs_sum), pct(hc_sum)});
  }
  table.note("EM optimum: " + bench::num(em.measured_time) + " s; averaged over " +
             std::to_string(kSeeds) + " seeds");
  table.print(std::cout);
  return 0;
}
