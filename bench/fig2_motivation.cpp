// Fig. 2 (a,b,c): the motivational experiments. Execution time of the DNA
// application across 11 work-distribution ratios for three scenarios,
// normalized into the paper's 1-10 range.
#include <algorithm>
#include <iostream>

#include "bench/common.hpp"

namespace {

struct Scenario {
  const char* title;
  double size_mb;
  int host_threads;
};

}  // namespace

int main() {
  using namespace hetopt;
  const bench::Env env;

  const Scenario scenarios[] = {
      {"Fig 2a: Size=190MB,  #CPU Threads=48", 190.0, 48},
      {"Fig 2b: Size=3250MB, #CPU Threads=48", 3250.0, 48},
      {"Fig 2c: Size=3250MB, #CPU Threads=4", 3250.0, 4},
  };

  for (const Scenario& s : scenarios) {
    // 11 ratios: CPU only, 90/10, ..., 10/90, Phi only.
    std::vector<double> times;
    std::vector<std::string> labels;
    for (int host_pct = 100; host_pct >= 0; host_pct -= 10) {
      const double t = env.machine.measure_combined(
          s.size_mb, host_pct, s.host_threads, parallel::HostAffinity::kScatter, 240,
          parallel::DeviceAffinity::kBalanced);
      times.push_back(t);
      labels.push_back(host_pct == 100  ? "CPU only"
                       : host_pct == 0 ? "Phi only"
                                       : std::to_string(host_pct) + "/" +
                                             std::to_string(100 - host_pct));
    }
    const double lo = *std::min_element(times.begin(), times.end());
    const double hi = *std::max_element(times.begin(), times.end());

    util::Table table(s.title);
    table.header({"Work distribution (host/device)", "Time [s]", "Normalized (1-10)"});
    std::size_t best = 0;
    for (std::size_t i = 0; i < times.size(); ++i) {
      if (times[i] < times[best]) best = i;
    }
    for (std::size_t i = 0; i < times.size(); ++i) {
      const double norm = hi > lo ? 1.0 + 9.0 * (times[i] - lo) / (hi - lo) : 1.0;
      table.row({labels[i] + (i == best ? "  <-- best" : ""), bench::num(times[i]),
                 bench::num(norm, 2)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Paper shapes: 2a -> CPU-only optimal; 2b -> 60/40-70/30 optimal; "
               "2c -> device-heavy (~30/70) optimal.\n";
  return 0;
}
