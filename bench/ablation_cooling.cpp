// ABLATION C (not in the paper): sensitivity of SAML to the annealing
// schedule — initial temperature and accepted-worse statistics — at a fixed
// 1000-iteration budget.
#include <iostream>

#include "bench/common.hpp"
#include "opt/simulated_annealing.hpp"

int main() {
  using namespace hetopt;
  const bench::Env env;
  const core::TrainingData data = bench::paper_training_data(env);
  const core::PerformancePredictor predictor = bench::trained_predictor(data);
  const core::Workload mouse("mouse", 2770.0);
  const auto em = core::run_em(env.space, env.machine, mouse);
  const auto objective = core::prediction_objective(predictor, mouse);
  constexpr std::size_t kIterations = 1000;
  constexpr int kSeeds = 7;

  util::Table table("Ablation C: annealing schedule sensitivity (mouse, 1000 iters)");
  table.header({"T_initial", "T_min", "percent diff vs EM", "accepted-worse moves"});
  for (const double t0 : {0.1, 0.5, 2.0, 10.0, 100.0}) {
    for (const double tmin : {1e-4, 1e-3, 1e-2}) {
      if (tmin >= t0) continue;
      double sum = 0.0;
      double worse = 0.0;
      for (int seed = 0; seed < kSeeds; ++seed) {
        opt::SaParams p;
        p.initial_temperature = t0;
        p.min_temperature = tmin;
        p.cooling_rate = opt::SaParams::cooling_rate_for(t0, tmin, kIterations);
        p.max_iterations = kIterations;
        p.seed = static_cast<std::uint64_t>(seed) * 17 + 5;
        const auto r = opt::simulated_annealing(env.space, objective, p);
        sum += env.machine.measure_combined(
            mouse.size_mb, r.best.host_percent, r.best.host_threads, r.best.host_affinity,
            r.best.device_threads, r.best.device_affinity);
        worse += static_cast<double>(r.accepted_worse);
      }
      table.row({bench::num(t0, 1), bench::num(tmin, 4),
                 bench::num(100.0 * (sum / kSeeds - em.measured_time) / em.measured_time, 2),
                 bench::num(worse / kSeeds, 1)});
    }
  }
  table.note("hotter schedules take more uphill moves; too hot wastes the budget, "
             "too cold degenerates to hill climbing");
  table.print(std::cout);
  return 0;
}
