// ABLATION D (the paper's future work, §II-A/§VI): scaling the node from one
// to eight accelerators. For each count, the water-filling balancer computes
// the optimal share vector; the equal-split row shows what naive
// distribution would cost.
#include <iostream>

#include "bench/common.hpp"
#include "sim/multi.hpp"
#include "util/strings.hpp"

int main() {
  using namespace hetopt;
  const double total_mb = 3170.0;  // human

  util::Table table("Ablation D: 1..8 Xeon Phi accelerators (human, 48 host threads)");
  table.header({"Accelerators", "Balanced makespan [s]", "Equal-split makespan [s]",
                "Host share", "Per-device share", "Speedup vs host-only"});

  const sim::MultiDeviceMachine host_only = sim::emil_with_phis(0);
  const double host_only_time =
      host_only.host_time(total_mb, 48, parallel::HostAffinity::kScatter);

  for (std::size_t k = 0; k <= 8; ++k) {
    const sim::MultiDeviceMachine multi = sim::emil_with_phis(k);
    const sim::ShareVector balanced =
        multi.balance(total_mb, 48, parallel::HostAffinity::kScatter);
    const sim::ShareVector equal =
        k > 0 ? multi.equal_split(total_mb, 48, parallel::HostAffinity::kScatter)
              : balanced;
    table.row({std::to_string(k), bench::num(balanced.makespan_s),
               bench::num(equal.makespan_s),
               util::format_double(balanced.host_percent, 1) + "%",
               k > 0 ? util::format_double(balanced.device_percent[0], 1) + "%" : "-",
               bench::num(host_only_time / balanced.makespan_s, 2) + "x"});
  }
  table.note("balanced = water-filling on the calibrated model; diminishing returns "
             "set in once per-device shares drop toward the launch-latency floor");
  table.print(std::cout);
  return 0;
}
