// Fig. 9 (a-d): execution time of the configuration suggested by SAM and
// SAML after each iteration budget, against the EM optimum (solid line) and
// the EML pick (dashed line), for the four genomes. SA numbers are averaged
// over several seeds, as SA is stochastic.
#include <iostream>

#include "bench/common.hpp"

int main() {
  using namespace hetopt;
  const bench::Env env;
  const core::TrainingData data = bench::paper_training_data(env);
  const core::PerformancePredictor predictor = bench::trained_predictor(data);
  constexpr int kSeeds = 5;

  for (const auto& workload : env.workloads()) {
    const auto em = core::run_em(env.space, env.machine, workload);
    const auto eml = core::run_eml(env.space, env.machine, workload, predictor);

    util::Table table("Fig 9: convergence for the sequence of " + workload.name);
    table.header({"Iterations", "SAML [s]", "SAM [s]", "EM [s]", "EML [s]"});
    for (const std::size_t budget : bench::iteration_budgets()) {
      double saml_sum = 0.0;
      double sam_sum = 0.0;
      for (int seed = 0; seed < kSeeds; ++seed) {
        const auto sa = core::sa_params_for_iterations(
            budget, static_cast<std::uint64_t>(seed) * 131 + budget);
        saml_sum +=
            core::run_saml(env.space, env.machine, workload, predictor, sa).measured_time;
        sam_sum += core::run_sam(env.space, env.machine, workload, sa).measured_time;
      }
      table.row({std::to_string(budget), bench::num(saml_sum / kSeeds),
                 bench::num(sam_sum / kSeeds), bench::num(em.measured_time),
                 bench::num(eml.measured_time)});
    }
    table.note("SA columns averaged over " + std::to_string(kSeeds) + " seeds");
    table.note("EM used " + std::to_string(em.evaluations) +
               " experiments; 1000 SA iterations = " +
               bench::num(100.0 * 1000.0 / static_cast<double>(em.evaluations), 1) +
               "% of that (paper: ~5%)");
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Paper shape: SAM/SAML decrease with iterations toward EM; EML can "
               "score worse than SAM/SAML at large budgets because it optimizes the "
               "predicted (not measured) surface.\n";
  return 0;
}
