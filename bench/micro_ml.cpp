// google-benchmark microbenchmarks for the ML substrate: tree/boosting fit
// and predict costs at the scales the SAML pipeline uses (thousands of rows,
// hundreds of boosting rounds, single-row predicts inside the SA loop).
#include <benchmark/benchmark.h>

#include "ml/boosted_trees.hpp"
#include "ml/linear_regression.hpp"
#include "ml/regression_tree.hpp"
#include "util/rng.hpp"

namespace {

using namespace hetopt;

ml::Dataset synthetic(std::size_t rows) {
  ml::Dataset d({"size_mb", "threads", "a0", "a1", "a2"});
  util::Xoshiro256 rng(1);
  for (std::size_t i = 0; i < rows; ++i) {
    const double mb = rng.uniform(10, 3200);
    const double threads = static_cast<double>(1 << rng.bounded(6));
    const auto aff = rng.bounded(3);
    const std::vector<double> row{mb, threads, aff == 0 ? 1.0 : 0.0,
                                  aff == 1 ? 1.0 : 0.0, aff == 2 ? 1.0 : 0.0};
    d.add(row, 0.02 + mb / 1024.0 / (0.3 * threads / (1 + 0.04 * threads)));
  }
  return d;
}

void BM_TreeFit(benchmark::State& state) {
  const ml::Dataset data = synthetic(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    ml::RegressionTree tree(ml::TreeParams{6, 3, 6});
    tree.fit(data);
    benchmark::DoNotOptimize(tree.node_count());
  }
}
BENCHMARK(BM_TreeFit)->Arg(500)->Arg(1440)->Arg(2880);

void BM_BoostedFit(benchmark::State& state) {
  const ml::Dataset data = synthetic(1440);  // the paper's host train half
  ml::BoostedTreesParams params;
  params.rounds = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ml::BoostedTreesRegressor model(params);
    model.fit(data);
    benchmark::DoNotOptimize(model.trained_rounds());
  }
}
BENCHMARK(BM_BoostedFit)->Arg(50)->Arg(150)->Arg(300);

void BM_BoostedPredict(benchmark::State& state) {
  const ml::Dataset data = synthetic(1440);
  ml::BoostedTreesRegressor model;
  model.fit(data);
  const std::vector<double> query{1500.0, 24.0, 0.0, 1.0, 0.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(query));
  }
}
BENCHMARK(BM_BoostedPredict);

void BM_LinearFit(benchmark::State& state) {
  const ml::Dataset data = synthetic(2880);
  for (auto _ : state) {
    ml::LinearRegressor model;
    model.fit(data);
    benchmark::DoNotOptimize(model.coefficients());
  }
}
BENCHMARK(BM_LinearFit);

void BM_PoissonFit(benchmark::State& state) {
  const ml::Dataset data = synthetic(2880);
  for (auto _ : state) {
    ml::PoissonRegressor model;
    model.fit(data);
    benchmark::DoNotOptimize(model.fitted());
  }
}
BENCHMARK(BM_PoissonFit);

}  // namespace

BENCHMARK_MAIN();
