// Fig. 8: histogram of absolute prediction errors on the device eval half.
// The device bins extend to 2.5 s because device times span 0.9-42 s.
#include <iostream>

#include "bench/common.hpp"
#include "util/stats.hpp"

int main() {
  using namespace hetopt;
  const bench::Env env;
  const core::TrainingData data = bench::paper_training_data(env);
  const auto [train_host, eval_host] = data.host.split_half(2016);
  const auto [train_device, eval_device] = data.device.split_half(2016);
  core::PerformancePredictor predictor;
  predictor.train(train_host, train_device);

  util::Histogram hist(
      {0.015, 0.03, 0.04, 0.05, 0.08, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 1.0, 1.5, 2.5});
  for (const auto& p : bench::evaluate_device_rows(predictor, eval_device)) {
    hist.add(std::abs(p.measured - p.predicted));
  }

  util::Table table("Fig 8: error histogram, device predictions (eval half)");
  table.header({"Absolute error [s]", "Frequency", "Bar"});
  for (std::size_t i = 0; i < hist.bin_count(); ++i) {
    const std::size_t c = hist.count(i);
    table.row({hist.label(i), std::to_string(c),
               std::string(std::min<std::size_t>(60, c / 5), '#')});
  }
  table.note("eval points: " + std::to_string(hist.total()) +
             "; wider error span than Fig 7 because device times span 0.9-42 s");
  table.print(std::cout);
  return 0;
}
