// ABLATION B (paper §III-B, unreported numbers): Boosted Decision Tree
// Regression vs Linear Regression vs Poisson Regression on the same
// half/half protocol. The paper states BDT was the most accurate; this
// harness quantifies the gap.
#include <iostream>

#include "bench/common.hpp"
#include "ml/linear_regression.hpp"
#include "ml/metrics.hpp"

namespace {

void eval_models(const char* title, const hetopt::ml::Dataset& full) {
  using namespace hetopt;
  const auto [train, eval] = full.split_half(2016);

  util::Table table(title);
  table.header({"Model", "mean absolute [s]", "mean percent [%]", "rmse [s]"});

  ml::BoostedTreesRegressor bdt;
  ml::LinearRegressor linear;
  ml::PoissonRegressor poisson;
  ml::Regressor* models[] = {&bdt, &linear, &poisson};
  for (ml::Regressor* model : models) {
    model->fit(train);
    const ml::ErrorSummary s = ml::evaluate(*model, eval);
    table.row({model->name(), bench::num(s.mean_absolute), bench::num(s.mean_percent, 2),
               bench::num(s.rmse)});
  }
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  using namespace hetopt;
  const bench::Env env;
  const core::TrainingData data = bench::paper_training_data(env);
  eval_models("Ablation B: model comparison, host experiments", data.host);
  eval_models("Ablation B: model comparison, device experiments", data.device);
  std::cout << "Expected: BoostedDecisionTreeRegression clearly ahead — the time "
               "surface is nonlinear in threads and affinity.\n";
  return 0;
}
