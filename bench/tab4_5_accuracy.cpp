// Tables IV and V: prediction accuracy (mean absolute error [s] and mean
// percent error [%]) grouped by thread count, for host and device.
// Paper averages: host 0.027 s / 5.239 %; device 0.074 s / 3.132 %.
#include <iostream>
#include <map>

#include "bench/common.hpp"
#include "ml/metrics.hpp"
#include "util/stats.hpp"

namespace {

void print_accuracy_table(const char* title,
                          const std::vector<hetopt::bench::EvalPoint>& points) {
  using namespace hetopt;
  std::map<int, std::pair<util::RunningStats, util::RunningStats>> by_threads;
  util::RunningStats all_abs;
  util::RunningStats all_pct;
  for (const auto& p : points) {
    const double abs_err = ml::absolute_error(p.measured, p.predicted);
    const double pct_err = ml::percent_error(p.measured, p.predicted);
    by_threads[p.threads].first.add(abs_err);
    by_threads[p.threads].second.add(pct_err);
    all_abs.add(abs_err);
    all_pct.add(pct_err);
  }

  util::Table table(title);
  std::vector<std::string> header{"Threads"};
  std::vector<std::string> abs_row{"absolute [s]"};
  std::vector<std::string> pct_row{"percent [%]"};
  for (const auto& [threads, stats] : by_threads) {
    header.push_back(std::to_string(threads));
    abs_row.push_back(bench::num(stats.first.mean()));
    pct_row.push_back(bench::num(stats.second.mean(), 2));
  }
  header.push_back("avg");
  abs_row.push_back(bench::num(all_abs.mean()));
  pct_row.push_back(bench::num(all_pct.mean(), 2));
  table.header(std::move(header));
  table.row(std::move(abs_row));
  table.row(std::move(pct_row));
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  using namespace hetopt;
  const bench::Env env;
  const core::TrainingData data = bench::paper_training_data(env);
  const auto [train_host, eval_host] = data.host.split_half(2016);
  const auto [train_device, eval_device] = data.device.split_half(2016);
  core::PerformancePredictor predictor;
  predictor.train(train_host, train_device);

  print_accuracy_table("Table IV: prediction accuracy per thread count (host)",
                       bench::evaluate_host_rows(predictor, eval_host));
  print_accuracy_table("Table V: prediction accuracy per thread count (device)",
                       bench::evaluate_device_rows(predictor, eval_device));
  std::cout << "Paper averages: host 0.027 s / 5.239 %; device 0.074 s / 3.132 %.\n";
  return 0;
}
