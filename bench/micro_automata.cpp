// google-benchmark microbenchmarks for the finite-automata substrate:
// construction costs and scan throughput (sequential and chunk-parallel).
#include <benchmark/benchmark.h>

#include "automata/aho_corasick.hpp"
#include "automata/bitap.hpp"
#include "automata/hopcroft.hpp"
#include "automata/parallel_matcher.hpp"
#include "automata/regex.hpp"
#include "automata/scanner.hpp"
#include "automata/subset.hpp"
#include "dna/generator.hpp"

namespace {

using namespace hetopt;

const std::string& sample_text() {
  static const std::string text = dna::GenomeGenerator{}.generate(1 << 22, 7);  // 4 MB
  return text;
}

const automata::DenseDfa& sample_dfa() {
  static const automata::DenseDfa dfa =
      automata::build_aho_corasick({"GATTACA", "TATAAA", "CCGG", "GGGGG"});
  return dfa;
}

void BM_AhoCorasickBuild(benchmark::State& state) {
  const std::vector<std::string> patterns{"GATTACA", "TATAAA", "CCGG", "GGGGG",
                                          "ACGTACGT", "TTTTTTTT"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(automata::build_aho_corasick(patterns));
  }
}
BENCHMARK(BM_AhoCorasickBuild);

void BM_RegexCompileAndDeterminize(benchmark::State& state) {
  for (auto _ : state) {
    const auto compiled = automata::compile_motifs({"TATAWAW", "GGN?CC", "ACGT"});
    benchmark::DoNotOptimize(
        automata::determinize(compiled.nfa, compiled.synchronization_bound));
  }
}
BENCHMARK(BM_RegexCompileAndDeterminize);

void BM_HopcroftMinimize(benchmark::State& state) {
  const auto compiled = automata::compile_motifs({"GGATCC", "GAATTC", "AAGCTT"});
  const automata::DenseDfa dfa =
      automata::determinize(compiled.nfa, compiled.synchronization_bound);
  for (auto _ : state) {
    benchmark::DoNotOptimize(automata::minimize(dfa));
  }
}
BENCHMARK(BM_HopcroftMinimize);

void BM_SequentialScan(benchmark::State& state) {
  const auto& dfa = sample_dfa();
  const auto& text = sample_text();
  for (auto _ : state) {
    benchmark::DoNotOptimize(automata::count_matches(dfa, text));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_SequentialScan);

void BM_ParallelScanWarmup(benchmark::State& state) {
  const auto& dfa = sample_dfa();
  const auto& text = sample_text();
  const auto threads = static_cast<std::size_t>(state.range(0));
  parallel::ThreadPool pool(threads);
  const automata::ParallelMatcher matcher(dfa, pool);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        matcher.count(text, threads, automata::ParallelStrategy::kWarmup));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_ParallelScanWarmup)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_ParallelScanSpeculative(benchmark::State& state) {
  const auto& dfa = sample_dfa();
  const auto& text = sample_text();
  const auto threads = static_cast<std::size_t>(state.range(0));
  parallel::ThreadPool pool(threads);
  const automata::ParallelMatcher matcher(dfa, pool);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        matcher.count(text, threads, automata::ParallelStrategy::kSpeculative));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_ParallelScanSpeculative)->Arg(1)->Arg(4)->Arg(16);

void BM_BitapScan(benchmark::State& state) {
  // The bit-parallel engine on the same pattern set as the DFA scans above:
  // one 64-bit word replaces a table lookup per byte.
  const automata::BitapMatcher matcher({"GATTACA", "TATAAA", "CCGG", "GGGGG"});
  const auto& text = sample_text();
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.count(text));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_BitapScan);

void BM_GenomeGeneration(benchmark::State& state) {
  const dna::GenomeGenerator gen;
  const auto bytes = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.generate(bytes, ++seed));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_GenomeGeneration)->Arg(1 << 16)->Arg(1 << 20);

}  // namespace

BENCHMARK_MAIN();
