// Fig. 5: measured vs predicted execution time on the host CPUs, scatter
// affinity, for 6/12/24/48 threads across file sizes. Protocol: the 2880
// host experiments are split half train / half eval; rows below are eval
// points only (unseen configurations).
#include <algorithm>
#include <iostream>
#include <map>

#include "bench/common.hpp"

int main() {
  using namespace hetopt;
  const bench::Env env;
  const core::TrainingData data = bench::paper_training_data(env);
  const auto [train_host, eval_host] = data.host.split_half(2016);
  const auto [train_device, eval_device] = data.device.split_half(2016);
  core::PerformancePredictor predictor;
  predictor.train(train_host, train_device);

  const auto points = bench::evaluate_host_rows(predictor, eval_host);

  // Group eval points with scatter affinity by size, columns by threads.
  constexpr std::size_t kScatterIdx = 1;  // kAllHostAffinities order
  const std::vector<int> wanted_threads{6, 12, 24, 48};
  std::map<double, std::map<int, const bench::EvalPoint*>> by_size;
  for (const auto& p : points) {
    if (p.affinity_index != kScatterIdx) continue;
    if (std::find(wanted_threads.begin(), wanted_threads.end(), p.threads) ==
        wanted_threads.end()) {
      continue;
    }
    by_size[p.size_mb][p.threads] = &p;
  }

  util::Table table(
      "Fig 5: host prediction accuracy (thread affinity = scatter, eval half)");
  std::vector<std::string> header{"File size [MB]"};
  for (int t : wanted_threads) {
    header.push_back(std::to_string(t) + "t measured");
    header.push_back(std::to_string(t) + "t predicted");
  }
  table.header(std::move(header));

  for (const auto& [size, cols] : by_size) {
    std::vector<std::string> row{bench::num(size, 0)};
    for (int t : wanted_threads) {
      const auto it = cols.find(t);
      if (it == cols.end()) {
        row.push_back("-");
        row.push_back("-");
      } else {
        row.push_back(bench::num(it->second->measured));
        row.push_back(bench::num(it->second->predicted));
      }
    }
    table.row(std::move(row));
  }
  table.note("total host experiments: " + std::to_string(data.host.size()) +
             " (train " + std::to_string(train_host.size()) + " / eval " +
             std::to_string(eval_host.size()) + ")");
  table.note("'-' : configuration landed in the training half for this split seed");
  table.print(std::cout);
  return 0;
}
